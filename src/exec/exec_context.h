/// \file exec_context.h
/// \brief Resource governance for query evaluation: deadlines, budgets,
/// cooperative cancellation and deterministic fault injection.
///
/// A single adversarial why-not question (a large cross join before early
/// termination kicks in, or a gov-scale aggregate) can otherwise pin a core
/// for unbounded time and memory. ExecContext carries the limits of one
/// evaluation: every interruptible loop in the engine calls CheckPoint() at
/// operator boundaries and every kCheckInterval rows inside join/aggregate
/// inner loops. A tripped limit surfaces as kDeadlineExceeded /
/// kResourceExhausted / kCancelled, which the engine converts into a
/// *partial* answer (ResultCompleteness) rather than a hard failure.
///
/// CheckPoint() maintains a deterministic step counter that does not depend
/// on wall-clock time, so InjectFailureAt(step) reproducibly fails the same
/// evaluation point across runs -- the hook exec_limits_test uses to prove
/// that cancellation at *any* step leaks nothing and never corrupts answers.

#ifndef NED_EXEC_EXEC_CONTEXT_H_
#define NED_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/timer.h"

namespace ned {

namespace obs {
class Trace;
}  // namespace obs

class TaskPool;

/// Inner loops call CheckEvery() per row; the full CheckPoint() (clock read,
/// budget comparison, injection test) runs once per this many rows.
inline constexpr uint64_t kCheckInterval = 256;

/// Default minimum rows per morsel before a parallel operator partitions its
/// input. Below this, partitioning overhead dominates; tests lower it to
/// exercise the parallel paths on small workloads.
inline constexpr size_t kDefaultParallelMinRows = 64;

/// Limits and cancellation for one evaluation.
///
/// Thread model (audited under ThreadSanitizer via the service tests): the
/// configuration setters (deadline, budgets, InjectFailureAt) must happen
/// before the context is shared with the evaluating thread -- the service
/// publishes them through its queue mutex. Once evaluation runs, *all*
/// mutable state (cancellation flag, step/tick counters, charge accounting)
/// is std::atomic with relaxed ordering, so a watchdog or monitoring thread
/// may concurrently call RequestCancel() and read steps()/rows_charged()/
/// bytes_charged() without racing the evaluator. The counters are
/// single-writer (only the evaluating thread mutates them), which lets the
/// hot path use relaxed load+store pairs -- plain movs, no locked RMW --
/// keeping governance overhead within the <2% bar (bench_limits).
class ExecContext {
 public:
  ExecContext() = default;

  // ---- configuration ------------------------------------------------------

  /// Absolute wall-clock deadline.
  void set_deadline(std::chrono::steady_clock::time_point tp) {
    deadline_ = tp;
  }
  /// Deadline `ms` milliseconds from now.
  void set_deadline_after_ms(int64_t ms) {
    deadline_ = NowAgainstClock() + std::chrono::milliseconds(ms);
  }
  bool has_deadline() const { return deadline_.has_value(); }

  /// Injects the time source the deadline is checked against. Must be set
  /// before evaluation starts (like the other configuration) and the clock
  /// must outlive the context. nullptr (the default) reads steady_clock
  /// directly, keeping the hot checkpoint free of virtual dispatch.
  void set_clock(const Clock* clock) { clock_ = clock; }

  /// Maximum materialized rows (query input + intermediate results) across
  /// the evaluation. 0 = unlimited.
  void set_row_budget(size_t max_rows) { row_budget_ = max_rows; }
  size_t row_budget() const { return row_budget_; }

  /// Approximate memory budget in bytes for materialized state. 0 =
  /// unlimited. Accounting is an estimate (tuple payload + lineage), not an
  /// allocator hook.
  void set_memory_budget(size_t max_bytes) { memory_budget_ = max_bytes; }
  size_t memory_budget() const { return memory_budget_; }

  /// Requests cooperative cancellation; the evaluation stops at its next
  /// checkpoint. Safe to call from another thread.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Deterministically fails the `step_index`-th checkpoint (1-based) with
  /// kResourceExhausted. 0 disables injection. Steps count CheckPoint()
  /// calls, which are independent of wall-clock time, so a given
  /// (query, data, step_index) always fails at the same evaluation point.
  void InjectFailureAt(uint64_t step_index) {
    inject_at_.store(step_index, std::memory_order_relaxed);
  }

  // ---- intra-query parallelism --------------------------------------------

  /// Enables intra-query parallelism: morsel fan-out draws threads from
  /// `pool` and partitions for up to `threads` concurrent workers. Like the
  /// other configuration, set before evaluation starts; the pool must
  /// outlive the context. threads <= 1 (or pool == nullptr) keeps the exact
  /// serial code paths. See docs/PARALLELISM.md.
  void set_parallelism(TaskPool* pool, int threads) {
    pool_ = pool;
    threads_ = threads < 1 ? 1 : threads;
  }
  TaskPool* task_pool() const { return pool_; }
  int threads() const { return threads_; }

  /// Minimum rows per morsel before an operator partitions (default
  /// kDefaultParallelMinRows). Tests lower it so small workloads still
  /// exercise the partitioned paths.
  void set_parallel_min_rows(size_t n) { parallel_min_rows_ = n == 0 ? 1 : n; }
  size_t parallel_min_rows() const { return parallel_min_rows_; }

  // ---- tracing ------------------------------------------------------------

  /// Attaches a per-request span sink (obs/trace.h). Configuration like the
  /// rest: set before evaluation starts, trace must outlive the context.
  /// nullptr (the default) keeps every emission site on its two-branch
  /// fast path. The trace is coordinator-only and deliberately NOT
  /// propagated to worker shards, which is what makes span structure
  /// identical across thread counts (docs/OBSERVABILITY.md).
  void set_trace(obs::Trace* trace) { trace_ = trace; }
  obs::Trace* trace() const { return trace_; }

  // ---- worker shards ------------------------------------------------------
  //
  // Each parallel worker governs its morsel through a private shard context:
  // charges land in the shard (no cross-thread counter writes, preserving
  // the single-writer contract below), while budget checks still see
  // parent-so-far + local because the shard's counters start at the parent's
  // snapshot. Deadline and the parent's cancellation flag are observed at
  // every worker checkpoint; fault injection and the *global* budget
  // decision stay coordinator-only, taken at partition-fold boundaries in
  // deterministic partition order (docs/PARALLELISM.md).

  /// Initialises `shard` as a worker-side view of this context for one
  /// partition. Coordinator thread only, before the worker starts.
  void BeginWorkerShard(ExecContext* shard) const;

  /// Folds a finished worker shard's charges into this context (the delta
  /// over the snapshot BeginWorkerShard installed). Coordinator thread only,
  /// after the worker finished; call in partition order, then CheckPoint().
  void FoldShard(const ExecContext& shard);

  // ---- accounting ---------------------------------------------------------

  /// Charges `n` materialized rows against the row budget (checked at the
  /// next checkpoint, so a tight inner loop only pays an add here). Like
  /// all counters, single-writer: only the evaluating thread charges, so a
  /// relaxed load+store (plain movs) suffices and concurrent readers stay
  /// race-free.
  void ChargeRows(size_t n) {
    rows_charged_.store(rows_charged_.load(std::memory_order_relaxed) + n,
                        std::memory_order_relaxed);
  }
  /// Charges approximately `n` bytes against the memory budget.
  void ChargeBytes(size_t n) {
    bytes_charged_.store(bytes_charged_.load(std::memory_order_relaxed) + n,
                         std::memory_order_relaxed);
  }

  size_t rows_charged() const {
    return rows_charged_.load(std::memory_order_relaxed);
  }
  size_t bytes_charged() const {
    return bytes_charged_.load(std::memory_order_relaxed);
  }
  /// Checkpoints passed so far (the fault-injection step space).
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }

  // ---- checking -----------------------------------------------------------

  /// Full limit check: fault injection, cancellation, budgets, deadline.
  /// Call at operator boundaries and (via CheckEvery) inside inner loops.
  Status CheckPoint();

  /// Per-iteration check for inner loops: runs the full CheckPoint every
  /// kCheckInterval calls, keeping the steady-state cost to one add+branch
  /// per row. Budgets are charged separately via ChargeRows/ChargeBytes when
  /// tuples actually materialize.
  Status CheckEvery() {
    const uint64_t tick = ticks_.load(std::memory_order_relaxed) + 1;
    ticks_.store(tick, std::memory_order_relaxed);
    if ((tick & (kCheckInterval - 1)) != 0) return Status::OK();
    return CheckPoint();
  }

  /// Resets accounting and step counters (budgets/deadline stay configured).
  /// Lets one context govern several sequential evaluations in tests.
  void ResetCounters() {
    rows_charged_.store(0, std::memory_order_relaxed);
    bytes_charged_.store(0, std::memory_order_relaxed);
    steps_.store(0, std::memory_order_relaxed);
    ticks_.store(0, std::memory_order_relaxed);
  }

 private:
  std::chrono::steady_clock::time_point NowAgainstClock() const {
    return clock_ != nullptr ? clock_->Now() : std::chrono::steady_clock::now();
  }

  const Clock* clock_ = nullptr;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  size_t row_budget_ = 0;
  size_t memory_budget_ = 0;
  TaskPool* pool_ = nullptr;
  int threads_ = 1;
  size_t parallel_min_rows_ = kDefaultParallelMinRows;
  obs::Trace* trace_ = nullptr;
  // Worker shards observe the coordinator's cancellation flag (and their
  // counters start at its snapshot, recorded here so folding charges the
  // delta only). Both are configuration from the shard's point of view:
  // written once by BeginWorkerShard before the worker runs.
  const std::atomic<bool>* parent_cancel_ = nullptr;
  size_t base_rows_ = 0;
  size_t base_bytes_ = 0;
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> inject_at_{0};
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<size_t> rows_charged_{0};
  std::atomic<size_t> bytes_charged_{0};
};

/// True for the status codes that mean "a governed limit tripped" rather
/// than "the computation is wrong": kDeadlineExceeded, kResourceExhausted,
/// kCancelled. The engine converts these into flagged partial answers.
bool IsResourceLimit(const Status& status);

/// Null-safe checkpoint helper for call sites holding an optional context.
inline Status CheckExec(ExecContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->CheckPoint();
}

/// Per-iteration check inside hot loops: one branch when no context is
/// installed, one add+branch when one is. Propagates a tripped limit out of
/// the enclosing function (which must return Status or Result<T>).
#define NED_EXEC_TICK(ctx)                           \
  do {                                               \
    if ((ctx) != nullptr) {                          \
      ::ned::Status _tick_st = (ctx)->CheckEvery();  \
      if (!_tick_st.ok()) return _tick_st;           \
    }                                                \
  } while (0)

}  // namespace ned

#endif  // NED_EXEC_EXEC_CONTEXT_H_
