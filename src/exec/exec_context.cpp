#include "exec/exec_context.h"

#include "common/strings.h"

namespace ned {

bool IsResourceLimit(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

Status ExecContext::CheckPoint() {
  ++steps_;
  if (inject_at_ != 0 && steps_ == inject_at_) {
    return Status::ResourceExhausted(
        StrCat("injected failure at step ", steps_));
  }
  if (cancel_requested()) {
    return Status::Cancelled("evaluation cancelled by caller");
  }
  if (row_budget_ != 0 && rows_charged_ > row_budget_) {
    return Status::ResourceExhausted(
        StrCat("row budget exhausted: materialized ", rows_charged_,
               " rows, budget ", row_budget_));
  }
  if (memory_budget_ != 0 && bytes_charged_ > memory_budget_) {
    return Status::ResourceExhausted(
        StrCat("memory budget exhausted: ~", bytes_charged_,
               " bytes materialized, budget ", memory_budget_));
  }
  if (deadline_.has_value() &&
      std::chrono::steady_clock::now() >= *deadline_) {
    return Status::DeadlineExceeded(
        StrCat("deadline exceeded after ", steps_, " checkpoints"));
  }
  return Status::OK();
}

}  // namespace ned
