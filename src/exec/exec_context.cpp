#include "exec/exec_context.h"

#include "common/strings.h"

namespace ned {

bool IsResourceLimit(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

Status ExecContext::CheckPoint() {
  // Single-writer counter: only the evaluating thread calls CheckPoint, so
  // load+store (a plain mov each, no lock prefix) replaces fetch_add.
  const uint64_t step = steps_.load(std::memory_order_relaxed) + 1;
  steps_.store(step, std::memory_order_relaxed);
  const uint64_t inject_at = inject_at_.load(std::memory_order_relaxed);
  if (inject_at != 0 && step == inject_at) {
    return Status::ResourceExhausted(
        StrCat("injected failure at step ", step));
  }
  if (cancel_requested()) {
    return Status::Cancelled("evaluation cancelled by caller");
  }
  if (parent_cancel_ != nullptr &&
      parent_cancel_->load(std::memory_order_relaxed)) {
    return Status::Cancelled("evaluation cancelled by caller");
  }
  const size_t rows = rows_charged_.load(std::memory_order_relaxed);
  if (row_budget_ != 0 && rows > row_budget_) {
    return Status::ResourceExhausted(
        StrCat("row budget exhausted: materialized ", rows,
               " rows, budget ", row_budget_));
  }
  const size_t bytes = bytes_charged_.load(std::memory_order_relaxed);
  if (memory_budget_ != 0 && bytes > memory_budget_) {
    return Status::ResourceExhausted(
        StrCat("memory budget exhausted: ~", bytes,
               " bytes materialized, budget ", memory_budget_));
  }
  if (deadline_.has_value() && NowAgainstClock() >= *deadline_) {
    return Status::DeadlineExceeded(
        StrCat("deadline exceeded after ", step, " checkpoints"));
  }
  return Status::OK();
}

void ExecContext::BeginWorkerShard(ExecContext* shard) const {
  // Limits are copied so a worker trips deadline/budget locally; counters
  // start at the coordinator's snapshot so "parent-so-far + my morsel" is
  // what the worker's budget comparison sees. Fault injection, the task
  // pool and the trace are deliberately NOT inherited: injection steps stay
  // a coordinator-only, deterministic step space, a worker never fans out
  // again (no nested morsel explosions), and spans are emitted only by the
  // coordinator so the span tree is identical at any thread count
  // (trace_test pins this).
  shard->clock_ = clock_;
  shard->deadline_ = deadline_;
  shard->row_budget_ = row_budget_;
  shard->memory_budget_ = memory_budget_;
  shard->parent_cancel_ = &cancelled_;
  shard->base_rows_ = rows_charged();
  shard->base_bytes_ = bytes_charged();
  shard->rows_charged_.store(shard->base_rows_, std::memory_order_relaxed);
  shard->bytes_charged_.store(shard->base_bytes_, std::memory_order_relaxed);
}

void ExecContext::FoldShard(const ExecContext& shard) {
  // The shard's counters began at the coordinator snapshot; fold the delta.
  // Runs on the coordinator thread after the worker finished (the pool's
  // section completion synchronises), so the single-writer counter contract
  // holds throughout.
  ChargeRows(shard.rows_charged() - shard.base_rows_);
  ChargeBytes(shard.bytes_charged() - shard.base_bytes_);
}

}  // namespace ned
