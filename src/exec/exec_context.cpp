#include "exec/exec_context.h"

#include "common/strings.h"

namespace ned {

bool IsResourceLimit(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

Status ExecContext::CheckPoint() {
  // Single-writer counter: only the evaluating thread calls CheckPoint, so
  // load+store (a plain mov each, no lock prefix) replaces fetch_add.
  const uint64_t step = steps_.load(std::memory_order_relaxed) + 1;
  steps_.store(step, std::memory_order_relaxed);
  const uint64_t inject_at = inject_at_.load(std::memory_order_relaxed);
  if (inject_at != 0 && step == inject_at) {
    return Status::ResourceExhausted(
        StrCat("injected failure at step ", step));
  }
  if (cancel_requested()) {
    return Status::Cancelled("evaluation cancelled by caller");
  }
  const size_t rows = rows_charged_.load(std::memory_order_relaxed);
  if (row_budget_ != 0 && rows > row_budget_) {
    return Status::ResourceExhausted(
        StrCat("row budget exhausted: materialized ", rows,
               " rows, budget ", row_budget_));
  }
  const size_t bytes = bytes_charged_.load(std::memory_order_relaxed);
  if (memory_budget_ != 0 && bytes > memory_budget_) {
    return Status::ResourceExhausted(
        StrCat("memory budget exhausted: ~", bytes,
               " bytes materialized, budget ", memory_budget_));
  }
  if (deadline_.has_value() && NowAgainstClock() >= *deadline_) {
    return Status::DeadlineExceeded(
        StrCat("deadline exceeded after ", step, " checkpoints"));
  }
  return Status::OK();
}

}  // namespace ned
