#include "exec/evaluator.h"

#include <algorithm>
#include <cmath>

#include "algebra/fingerprint.h"
#include "cache/subtree_cache.h"
#include "common/strings.h"

namespace ned {

// ---------------------------------------------------------------------------
// QueryInput
// ---------------------------------------------------------------------------

Result<QueryInput> QueryInput::Build(const QueryTree& tree, const Database& db,
                                     ExecContext* ctx) {
  QueryInput input;
  uint32_t ordinal = 0;
  for (const OperatorNode* scan : tree.scans()) {
    NED_RETURN_NOT_OK(CheckExec(ctx));
    NED_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(scan->base_table));
    AliasData data;
    data.schema = scan->output_schema;
    data.ordinal = ordinal;
    data.data_version = rel->data_version();
    data.tuples.reserve(rel->size());
    for (size_t row = 0; row < rel->size(); ++row) {
      NED_EXEC_TICK(ctx);
      TraceTuple t;
      t.rid = MakeTupleId(ordinal, row);
      t.values = rel->row(row);
      t.lineage = {t.rid};
      if (ctx != nullptr) {
        ctx->ChargeRows(1);
        ctx->ChargeBytes(sizeof(TraceTuple) + t.values.size() * sizeof(Value));
      }
      data.tuples.push_back(std::move(t));
    }
    input.alias_order_.push_back(scan->alias);
    input.by_alias_.emplace(scan->alias, std::move(data));
    ++ordinal;
  }
  return input;
}

Result<const std::vector<TraceTuple>*> QueryInput::AliasTuples(
    const std::string& alias) const {
  auto it = by_alias_.find(alias);
  if (it == by_alias_.end()) return Status::NotFound("no such alias: " + alias);
  return &it->second.tuples;
}

Result<const Schema*> QueryInput::AliasSchema(const std::string& alias) const {
  auto it = by_alias_.find(alias);
  if (it == by_alias_.end()) return Status::NotFound("no such alias: " + alias);
  return &it->second.schema;
}

const TraceTuple* QueryInput::FindById(TupleId id) const {
  uint32_t ordinal = TupleIdAlias(id);
  if (ordinal >= alias_order_.size()) return nullptr;
  const AliasData& data = by_alias_.at(alias_order_[ordinal]);
  uint64_t row = TupleIdRow(id);
  if (row >= data.tuples.size()) return nullptr;
  return &data.tuples[row];
}

std::string QueryInput::AliasOfId(TupleId id) const {
  uint32_t ordinal = TupleIdAlias(id);
  if (ordinal >= alias_order_.size()) return "";
  return alias_order_[ordinal];
}

std::string QueryInput::DisplayTuple(TupleId id) const {
  const TraceTuple* t = FindById(id);
  std::string alias = AliasOfId(id);
  if (t == nullptr || alias.empty()) return StrCat("?#", id);
  const Schema& schema = by_alias_.at(alias).schema;
  if (schema.size() > 0 && t->values.size() > 0) {
    return alias + "." + schema.at(0).name + ":" + t->values.at(0).ToString();
  }
  return alias + "#" + std::to_string(TupleIdRow(id));
}

size_t QueryInput::TotalTuples() const {
  size_t total = 0;
  for (const auto& [_, data] : by_alias_) total += data.tuples.size();
  return total;
}

std::string HowProvenance(const TraceTuple& tuple, const QueryInput& input) {
  std::vector<std::string> parts;
  parts.reserve(tuple.lineage.size());
  for (TupleId id : tuple.lineage) parts.push_back(input.DisplayTuple(id));
  return Join(parts, " * ");
}

// ---------------------------------------------------------------------------
// Aggregate computation (shared with NedExplain's cond-alpha checks)
// ---------------------------------------------------------------------------

Result<std::vector<Tuple>> ComputeAggregateTuples(
    const std::vector<Attribute>& group_by, const std::vector<AggCall>& calls,
    const std::vector<const TraceTuple*>& input, const Schema& input_schema,
    const Schema& output_schema, ExecContext* ctx) {
  (void)output_schema;  // layout is group values then agg values, by contract

  std::vector<size_t> group_idx;
  for (const auto& g : group_by) {
    NED_ASSIGN_OR_RETURN(size_t idx, input_schema.Resolve(g));
    group_idx.push_back(idx);
  }
  std::vector<size_t> arg_idx;
  for (const auto& call : calls) {
    NED_ASSIGN_OR_RETURN(size_t idx, input_schema.Resolve(call.arg));
    arg_idx.push_back(idx);
  }

  // Group input tuples, preserving first-seen order for determinism.
  std::unordered_map<Tuple, size_t, TupleHash> group_of;
  std::vector<std::pair<Tuple, std::vector<const TraceTuple*>>> groups;
  for (const TraceTuple* t : input) {
    NED_EXEC_TICK(ctx);
    std::vector<Value> key_values;
    key_values.reserve(group_idx.size());
    for (size_t idx : group_idx) key_values.push_back(t->values.at(idx));
    Tuple key(std::move(key_values));
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) groups.emplace_back(std::move(key), std::vector<const TraceTuple*>{});
    groups[it->second].second.push_back(t);
  }

  std::vector<Tuple> out;
  out.reserve(groups.size());
  for (const auto& [key, members] : groups) {
    std::vector<Value> values = key.values();
    for (size_t c = 0; c < calls.size(); ++c) {
      const AggCall& call = calls[c];
      size_t idx = arg_idx[c];
      int64_t count = 0;
      double sum = 0;
      bool numeric_ok = true;
      std::optional<Value> min_v, max_v;
      for (const TraceTuple* t : members) {
        NED_EXEC_TICK(ctx);
        const Value& v = t->values.at(idx);
        if (v.is_null()) continue;
        ++count;
        if (v.is_numeric()) {
          sum += v.NumericValue();
        } else {
          numeric_ok = false;
        }
        if (!min_v.has_value() ||
            Value::Satisfies(v, CompareOp::kLt, *min_v)) {
          min_v = v;
        }
        if (!max_v.has_value() ||
            Value::Satisfies(v, CompareOp::kGt, *max_v)) {
          max_v = v;
        }
      }
      switch (call.fn) {
        case AggFn::kCount:
          values.push_back(Value::Int(count));
          break;
        case AggFn::kSum:
          if (count == 0) {
            values.push_back(Value::Null());
          } else if (!numeric_ok) {
            return Status::TypeError("sum over non-numeric attribute " +
                                     call.arg.FullName());
          } else {
            values.push_back(Value::Real(sum));
          }
          break;
        case AggFn::kAvg:
          if (count == 0) {
            values.push_back(Value::Null());
          } else if (!numeric_ok) {
            return Status::TypeError("avg over non-numeric attribute " +
                                     call.arg.FullName());
          } else {
            values.push_back(Value::Real(sum / static_cast<double>(count)));
          }
          break;
        case AggFn::kMin:
          values.push_back(min_v.value_or(Value::Null()));
          break;
        case AggFn::kMax:
          values.push_back(max_v.value_or(Value::Null()));
          break;
      }
    }
    out.emplace_back(std::move(values));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

const std::string& Evaluator::CacheKeyFor(const OperatorNode* node) {
  auto it = cache_keys_.find(node);
  if (it != cache_keys_.end()) return it->second;
  std::string key = StrCat("(", NodeFingerprint(*node), "#o",
                           node_ordinal_.at(node));
  if (node->is_leaf()) {
    // Pin the alias ordinal (it determines base rids) and the backing
    // relation's data version (it determines rows); together with the
    // schema inside NodeFingerprint, a scan key changes whenever anything
    // observable about the scan output can change.
    size_t alias_ordinal = 0;
    const auto& order = input_->aliases();
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == node->alias) {
        alias_ordinal = i;
        break;
      }
    }
    key += StrCat("#a", alias_ordinal, "#v",
                  input_->AliasDataVersion(alias_ordinal));
  }
  for (const auto& child : node->children) {
    key += ";";
    key += CacheKeyFor(child.get());
  }
  key += ")";
  auto [pos, _] = cache_keys_.emplace(node, std::move(key));
  return pos->second;
}

Result<bool> Evaluator::TryReplayCacheHit(const OperatorNode* node) {
  if (Rows hit = cache_->Lookup(CacheKeyFor(node))) {
    // Replay the exact charges recomputation would make, tick-checked so
    // a governed run can still trip its budgets mid-hit. On a trip the
    // node stays unevaluated (outputs_ untouched) -- same observable
    // state as a trip during Compute.
    for (const TraceTuple& t : *hit) {
      NED_EXEC_TICK(ctx_);
      ChargeTuple(ctx_, t);
    }
    // Post-replay boundary check, symmetric with the post-Compute one in
    // ComputeAndStore: without it a pure-hit evaluation could blow its row
    // budget and return OK because no later checkpoint ever runs.
    NED_RETURN_NOT_OK(CheckExec(ctx_));
    tuples_produced_ += hit->size();
    ++cache_hits_;
    outputs_.emplace(node, std::move(hit));
    return true;
  }
  ++cache_misses_;
  return false;
}

Result<const std::vector<TraceTuple>*> Evaluator::ComputeAndStore(
    const OperatorNode* node) {
  // Deterministic rid layout: each node's output rows take rids base+0,
  // base+1, ... regardless of evaluation order, so cached outputs replay
  // verbatim. Children have finished computing by contract, so the scope's
  // counter cannot interleave with theirs.
  EvalScope scope{ctx_, RidBaseFor(node)};
  NED_ASSIGN_OR_RETURN(std::vector<TraceTuple> out, Compute(node, scope));
  tuples_produced_ += out.size();
  NED_RETURN_NOT_OK(CheckExec(ctx_));
  const bool cacheable =
      cache_ != nullptr && cache_->enabled() && !node->is_leaf();
  Rows rows = std::make_shared<const std::vector<TraceTuple>>(std::move(out));
  if (cacheable) cache_->Insert(CacheKeyFor(node), rows);
  auto [pos, _] = outputs_.emplace(node, std::move(rows));
  return pos->second.get();
}

Result<const std::vector<TraceTuple>*> Evaluator::EvalNode(
    const OperatorNode* node) {
  auto it = outputs_.find(node);
  if (it != outputs_.end()) return it->second.get();
  // Operator boundary: a governed evaluation re-checks its limits before
  // descending into (and after finishing) each operator.
  NED_RETURN_NOT_OK(CheckExec(ctx_));
  const bool cacheable =
      cache_ != nullptr && cache_->enabled() && !node->is_leaf();
  if (cacheable) {
    NED_ASSIGN_OR_RETURN(bool hit, TryReplayCacheHit(node));
    if (hit) return outputs_.at(node).get();
  }
  for (const auto& child : node->children) {
    auto child_result = EvalNode(child.get());
    if (!child_result.ok()) return child_result.status();
  }
  return ComputeAndStore(node);
}

Status Evaluator::EvalNodes(const std::vector<const OperatorNode*>& nodes) {
  auto eval_serially = [&]() -> Status {
    for (const OperatorNode* node : nodes) {
      auto result = EvalNode(node);
      if (!result.ok()) return result.status();
    }
    return Status::OK();
  };
  if (!ParallelActive(ctx_) || nodes.size() < 2) return eval_serially();

  // Coordinator pre-pass in node order: the same memo / boundary-check /
  // cache-replay sequence the EvalNode loop would run, leaving only nodes
  // that genuinely need computing. Fan-out requires every child to be
  // evaluated already (NedExplain's bottom-up level walk guarantees it);
  // anything else falls back to the serial walk.
  const bool cache_on = cache_ != nullptr && cache_->enabled();
  std::vector<const OperatorNode*> pending;
  for (const OperatorNode* node : nodes) {
    if (outputs_.count(node) > 0) continue;
    for (const auto& child : node->children) {
      if (outputs_.count(child.get()) == 0) return eval_serially();
    }
    NED_RETURN_NOT_OK(CheckExec(ctx_));
    if (cache_on && !node->is_leaf()) {
      NED_ASSIGN_OR_RETURN(bool hit, TryReplayCacheHit(node));
      if (hit) continue;
    }
    pending.push_back(node);
  }
  if (pending.size() < 2) {
    for (const OperatorNode* node : pending) {
      auto result = ComputeAndStore(node);
      if (!result.ok()) return result.status();
    }
    return Status::OK();
  }

  // Sibling fan-out: each pending node computes detached on a worker shard
  // (disjoint subtrees, read-only view of memoized outputs). The
  // coordinator folds shards back in node order -- charges, checkpoints,
  // memoization and cache insertion all happen in the order the serial
  // walk would produce, so observable state is identical.
  const size_t n = pending.size();
  std::vector<ExecContext> shards(n);
  std::vector<std::vector<TraceTuple>> outs(n);
  std::vector<Status> statuses(n, Status::OK());
  for (size_t i = 0; i < n; ++i) ctx_->BeginWorkerShard(&shards[i]);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([this, &shards, &outs, &statuses, &pending, i] {
      EvalScope scope{&shards[i], RidBaseFor(pending[i])};
      auto result = Compute(pending[i], scope);
      if (result.ok()) {
        outs[i] = std::move(result).value();
      } else {
        statuses[i] = result.status();
      }
    });
  }
  ctx_->task_pool()->RunAndWait(tasks);
  for (size_t i = 0; i < n; ++i) {
    ctx_->FoldShard(shards[i]);
    NED_RETURN_NOT_OK(ctx_->CheckPoint());
    NED_RETURN_NOT_OK(statuses[i]);
    tuples_produced_ += outs[i].size();
    Rows rows =
        std::make_shared<const std::vector<TraceTuple>>(std::move(outs[i]));
    if (cache_on && !pending[i]->is_leaf()) {
      cache_->Insert(CacheKeyFor(pending[i]), rows);
    }
    outputs_.emplace(pending[i], std::move(rows));
  }
  return Status::OK();
}

Result<std::vector<TraceTuple>> Evaluator::RunPartitioned(
    EvalScope& scope, const MorselPlan& plan,
    const std::function<Status(size_t, size_t, ExecContext*,
                               std::vector<TraceTuple>*)>& morsel) {
  const size_t parts = plan.partitions;
  std::vector<ExecContext> shards(parts);
  std::vector<std::vector<TraceTuple>> outs(parts);
  std::vector<Status> statuses(parts, Status::OK());
  for (size_t p = 0; p < parts; ++p) scope.ctx->BeginWorkerShard(&shards[p]);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(parts);
  for (size_t p = 0; p < parts; ++p) {
    tasks.push_back([&, p] {
      statuses[p] = morsel(plan.begin(p), plan.end(p), &shards[p], &outs[p]);
    });
  }
  scope.ctx->task_pool()->RunAndWait(tasks);
  // Merge in partition order, assigning rids as rows are appended: morsels
  // produce rows in input order within disjoint input ranges, so the
  // concatenation is the serial production order and row i of the output
  // gets rid base+i exactly as the serial loop would assign it.
  std::vector<TraceTuple> out;
  for (size_t p = 0; p < parts; ++p) {
    scope.ctx->FoldShard(shards[p]);
    NED_RETURN_NOT_OK(scope.ctx->CheckPoint());
    NED_RETURN_NOT_OK(statuses[p]);
    out.reserve(out.size() + outs[p].size());
    for (TraceTuple& t : outs[p]) {
      t.rid = scope.NextRid();
      out.push_back(std::move(t));
    }
  }
  return out;
}

const std::vector<TraceTuple>* Evaluator::TryGetOutput(
    const OperatorNode* node) const {
  auto it = outputs_.find(node);
  return it == outputs_.end() ? nullptr : it->second.get();
}

Result<std::vector<const std::vector<TraceTuple>*>> Evaluator::InputsOf(
    const OperatorNode* node) {
  std::vector<const std::vector<TraceTuple>*> inputs;
  if (node->is_leaf()) {
    NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* tuples,
                         input_->AliasTuples(node->alias));
    inputs.push_back(tuples);
    return inputs;
  }
  for (const auto& child : node->children) {
    NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* out,
                         EvalNode(child.get()));
    inputs.push_back(out);
  }
  return inputs;
}

Result<std::vector<TraceTuple>> Evaluator::Compute(const OperatorNode* node,
                                                   EvalScope& scope) {
  switch (node->kind) {
    case OpKind::kScan: {
      // Scan output is the alias's input instance verbatim (same base rids).
      NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* tuples,
                           input_->AliasTuples(node->alias));
      const MorselPlan plan = PlanFor(scope.ctx, tuples->size());
      if (!plan.active()) return *tuples;
      // Partitioned copy: scans keep base rids and (like the serial copy)
      // make no charges, so workers just copy disjoint slices -- trivially
      // identical to the serial copy, element for element.
      std::vector<TraceTuple> out(tuples->size());
      std::vector<std::function<void()>> tasks;
      tasks.reserve(plan.partitions);
      for (size_t p = 0; p < plan.partitions; ++p) {
        tasks.push_back([&, p] {
          for (size_t i = plan.begin(p); i < plan.end(p); ++i) {
            out[i] = (*tuples)[i];
          }
        });
      }
      scope.ctx->task_pool()->RunAndWait(tasks);
      return out;
    }
    case OpKind::kSelect:
      return ComputeSelect(node, scope);
    case OpKind::kProject:
      return ComputeProject(node, scope);
    case OpKind::kJoin:
      return ComputeJoin(node, scope);
    case OpKind::kUnion:
      return ComputeUnion(node, scope);
    case OpKind::kDifference:
      return ComputeDifference(node, scope);
    case OpKind::kAggregate:
      return ComputeAggregate(node, scope);
  }
  return Status::Internal("unknown operator kind in Compute");
}

Result<std::vector<TraceTuple>> Evaluator::ComputeSelect(
    const OperatorNode* node, EvalScope& scope) {
  const std::vector<TraceTuple>& in = *TryGetOutput(node->children[0].get());
  const Schema& schema = node->children[0]->output_schema;
  const MorselPlan plan = PlanFor(scope.ctx, in.size());
  if (plan.active()) {
    // Each morsel filters its input slice in order, leaving rids unassigned;
    // the partition-order merge in RunPartitioned assigns them, reproducing
    // the serial production order exactly (a filter is order-preserving).
    return RunPartitioned(
        scope, plan,
        [&](size_t begin, size_t end, ExecContext* shard,
            std::vector<TraceTuple>* out) -> Status {
          for (size_t i = begin; i < end; ++i) {
            const TraceTuple& t = in[i];
            NED_EXEC_TICK(shard);
            NED_ASSIGN_OR_RETURN(bool keep,
                                 node->predicate->EvalBool(t.values, schema));
            if (!keep) continue;
            TraceTuple o;
            o.values = t.values;
            o.preds = {t.rid};
            o.lineage = t.lineage;
            ChargeTuple(shard, o);
            out->push_back(std::move(o));
          }
          return Status::OK();
        });
  }
  std::vector<TraceTuple> out;
  for (const TraceTuple& t : in) {
    NED_EXEC_TICK(scope.ctx);
    NED_ASSIGN_OR_RETURN(bool keep, node->predicate->EvalBool(t.values, schema));
    if (!keep) continue;
    TraceTuple o;
    o.rid = scope.NextRid();
    o.values = t.values;
    o.preds = {t.rid};
    o.lineage = t.lineage;
    ChargeTuple(scope.ctx, o);
    out.push_back(std::move(o));
  }
  return out;
}

Result<std::vector<TraceTuple>> Evaluator::ComputeProject(
    const OperatorNode* node, EvalScope& scope) {
  const std::vector<TraceTuple>& in = *TryGetOutput(node->children[0].get());
  const Schema& child_schema = node->children[0]->output_schema;
  std::vector<size_t> indices;
  for (const auto& a : node->projection) {
    NED_ASSIGN_OR_RETURN(size_t idx, child_schema.Resolve(a));
    indices.push_back(idx);
  }
  // Set semantics: value-equal projections merge; lineage is the union of all
  // contributing tuples' lineages (Cui & Widom projection lineage). Dedup
  // operators stay coordinator-serial: first-seen order *defines* the rid
  // order, so a partitioned dedup would have to re-merge serially anyway
  // (docs/PARALLELISM.md).
  std::unordered_map<Tuple, size_t, TupleHash> seen;
  std::vector<TraceTuple> out;
  for (const TraceTuple& t : in) {
    NED_EXEC_TICK(scope.ctx);
    std::vector<Value> values;
    values.reserve(indices.size());
    for (size_t idx : indices) values.push_back(t.values.at(idx));
    Tuple projected(std::move(values));
    auto [it, inserted] = seen.emplace(projected, out.size());
    if (inserted) {
      TraceTuple o;
      o.rid = scope.NextRid();
      o.values = std::move(projected);
      o.preds = {t.rid};
      o.lineage = t.lineage;
      ChargeTuple(scope.ctx, o);
      out.push_back(std::move(o));
    } else {
      TraceTuple& o = out[it->second];
      o.preds.push_back(t.rid);
      o.lineage = BaseSetUnion(o.lineage, t.lineage);
    }
  }
  return out;
}

Result<std::vector<TraceTuple>> Evaluator::ComputeJoin(
    const OperatorNode* node, EvalScope& scope) {
  const std::vector<TraceTuple>& left = *TryGetOutput(node->children[0].get());
  const std::vector<TraceTuple>& right = *TryGetOutput(node->children[1].get());
  const Schema& ls = node->children[0]->output_schema;
  const Schema& rs = node->children[1]->output_schema;

  // Key columns from the renaming triples.
  std::vector<size_t> lkey, rkey;
  for (const auto& t : node->renaming.triples()) {
    NED_ASSIGN_OR_RETURN(size_t li, ls.Resolve(t.a1));
    NED_ASSIGN_OR_RETURN(size_t ri, rs.Resolve(t.a2));
    lkey.push_back(li);
    rkey.push_back(ri);
  }

  // Output column sources: (side, index). Renamed attributes read from the
  // left side (values agree by the join condition).
  struct Source {
    int side;
    size_t index;
  };
  std::vector<Source> sources;
  for (const auto& attr : node->output_schema.attributes()) {
    std::optional<Source> src;
    if (attr.qualified()) {
      if (auto idx = ls.IndexOf(attr); idx.has_value()) src = Source{0, *idx};
      else if (auto ridx = rs.IndexOf(attr); ridx.has_value()) src = Source{1, *ridx};
    } else {
      std::optional<RenameTriple> triple = node->renaming.FindByNewName(attr.name);
      if (triple.has_value()) {
        NED_ASSIGN_OR_RETURN(size_t idx, ls.Resolve(triple->a1));
        src = Source{0, idx};
      } else if (auto idx = ls.IndexOf(attr); idx.has_value()) {
        src = Source{0, *idx};  // pre-renamed unqualified attr from below
      } else if (auto ridx = rs.IndexOf(attr); ridx.has_value()) {
        src = Source{1, *ridx};
      }
    }
    if (!src.has_value()) {
      return Status::Internal("join output attribute has no source: " +
                              attr.FullName());
    }
    sources.push_back(*src);
  }

  auto key_of = [](const TraceTuple& t, const std::vector<size_t>& idx)
      -> std::optional<Tuple> {
    std::vector<Value> values;
    values.reserve(idx.size());
    for (size_t i : idx) {
      if (t.values.at(i).is_null()) return std::nullopt;  // NULL never joins
      values.push_back(t.values.at(i));
    }
    return Tuple(std::move(values));
  };

  // Build hash table on the right side (or all rows for a cross product).
  // Key equality must coerce numerics (int 10 joins double 10.0), matching
  // Value::Hash's coercion-consistent hashing; Tuple::operator== is exact.
  struct JoinKeyEq {
    bool operator()(const Tuple& a, const Tuple& b) const {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!Value::Satisfies(a.at(i), CompareOp::kEq, b.at(i))) return false;
      }
      return true;
    }
  };
  std::unordered_map<Tuple, std::vector<const TraceTuple*>, TupleHash,
                     JoinKeyEq>
      table;
  std::vector<const TraceTuple*> all_right;
  if (lkey.empty()) {
    for (const TraceTuple& r : right) all_right.push_back(&r);
  } else {
    for (const TraceTuple& r : right) {
      NED_EXEC_TICK(scope.ctx);
      std::optional<Tuple> key = key_of(r, rkey);
      if (key.has_value()) table[*key].push_back(&r);
    }
  }

  // Probes one left row against the (read-only) hash table, appending
  // matches in bucket order. Rid assignment is the caller's job: the serial
  // loop assigns as it appends, the partitioned path assigns at merge.
  auto probe_row = [&](const TraceTuple& l, ExecContext* ctx,
                       std::vector<TraceTuple>* out) -> Status {
    const std::vector<const TraceTuple*>* matches = nullptr;
    if (lkey.empty()) {
      matches = &all_right;
    } else {
      std::optional<Tuple> key = key_of(l, lkey);
      if (!key.has_value()) return Status::OK();
      auto it = table.find(*key);
      if (it == table.end()) return Status::OK();
      matches = &it->second;
    }
    for (const TraceTuple* r : *matches) {
      NED_EXEC_TICK(ctx);  // a cross join's inner loop must stay interruptible
      // Hash buckets can contain numeric-coerced collisions; verify equality.
      bool keys_equal = true;
      for (size_t k = 0; k < lkey.size(); ++k) {
        if (!Value::Satisfies(l.values.at(lkey[k]), CompareOp::kEq,
                              r->values.at(rkey[k]))) {
          keys_equal = false;
          break;
        }
      }
      if (!keys_equal) continue;
      std::vector<Value> values;
      values.reserve(sources.size());
      for (const Source& s : sources) {
        values.push_back(s.side == 0 ? l.values.at(s.index)
                                     : r->values.at(s.index));
      }
      Tuple joined(std::move(values));
      if (node->extra_predicate != nullptr) {
        NED_ASSIGN_OR_RETURN(
            bool keep, node->extra_predicate->EvalBool(joined, node->output_schema));
        if (!keep) continue;
      }
      TraceTuple o;
      o.values = std::move(joined);
      o.preds = {l.rid, r->rid};
      o.lineage = BaseSetUnion(l.lineage, r->lineage);
      ChargeTuple(ctx, o);
      out->push_back(std::move(o));
    }
    return Status::OK();
  };

  const MorselPlan plan = PlanFor(scope.ctx, left.size());
  if (plan.active()) {
    // Build stays serial (one hash table, charged to the coordinator);
    // probe partitions over the left input. Each morsel emits its matches
    // in (left row, bucket) order over a disjoint left range, so the
    // partition-order merge is the serial production order.
    return RunPartitioned(
        scope, plan,
        [&](size_t begin, size_t end, ExecContext* shard,
            std::vector<TraceTuple>* out) -> Status {
          for (size_t i = begin; i < end; ++i) {
            NED_EXEC_TICK(shard);
            NED_RETURN_NOT_OK(probe_row(left[i], shard, out));
          }
          return Status::OK();
        });
  }
  std::vector<TraceTuple> out;
  for (const TraceTuple& l : left) {
    NED_EXEC_TICK(scope.ctx);
    size_t first = out.size();
    NED_RETURN_NOT_OK(probe_row(l, scope.ctx, &out));
    for (size_t i = first; i < out.size(); ++i) out[i].rid = scope.NextRid();
  }
  return out;
}

Result<std::vector<TraceTuple>> Evaluator::ComputeUnion(
    const OperatorNode* node, EvalScope& scope) {
  const std::vector<TraceTuple>& left = *TryGetOutput(node->children[0].get());
  const std::vector<TraceTuple>& right = *TryGetOutput(node->children[1].get());
  const Schema& ls = node->children[0]->output_schema;
  const Schema& rs = node->children[1]->output_schema;

  // Column order of the output follows nu(left schema); map each side's
  // columns to output positions.
  auto mapping_for = [&](const Schema& side) -> Result<std::vector<size_t>> {
    std::vector<size_t> map(node->output_schema.size(), 0);
    for (size_t out_i = 0; out_i < node->output_schema.size(); ++out_i) {
      const Attribute& target = node->output_schema.at(out_i);
      bool found = false;
      for (size_t i = 0; i < side.size(); ++i) {
        if (node->renaming.Apply(side.at(i)) == target) {
          map[out_i] = i;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::TypeError("union operand missing attribute " +
                                 target.FullName());
      }
    }
    return map;
  };
  NED_ASSIGN_OR_RETURN(std::vector<size_t> lmap, mapping_for(ls));
  NED_ASSIGN_OR_RETURN(std::vector<size_t> rmap, mapping_for(rs));

  std::unordered_map<Tuple, size_t, TupleHash> seen;
  std::vector<TraceTuple> out;
  auto add_side = [&](const std::vector<TraceTuple>& side,
                      const std::vector<size_t>& map) -> Status {
    for (const TraceTuple& t : side) {
      NED_EXEC_TICK(scope.ctx);
      std::vector<Value> values;
      values.reserve(map.size());
      for (size_t i : map) values.push_back(t.values.at(i));
      Tuple mapped(std::move(values));
      auto [it, inserted] = seen.emplace(mapped, out.size());
      if (inserted) {
        TraceTuple o;
        o.rid = scope.NextRid();
        o.values = std::move(mapped);
        o.preds = {t.rid};
        o.lineage = t.lineage;
        ChargeTuple(scope.ctx, o);
        out.push_back(std::move(o));
      } else {
        TraceTuple& o = out[it->second];
        o.preds.push_back(t.rid);
        o.lineage = BaseSetUnion(o.lineage, t.lineage);
      }
    }
    return Status::OK();
  };
  NED_RETURN_NOT_OK(add_side(left, lmap));
  NED_RETURN_NOT_OK(add_side(right, rmap));
  return out;
}

Result<std::vector<TraceTuple>> Evaluator::ComputeDifference(
    const OperatorNode* node, EvalScope& scope) {
  const std::vector<TraceTuple>& left = *TryGetOutput(node->children[0].get());
  const std::vector<TraceTuple>& right = *TryGetOutput(node->children[1].get());
  const Schema& ls = node->children[0]->output_schema;
  const Schema& rs = node->children[1]->output_schema;

  auto mapping_for = [&](const Schema& side) -> Result<std::vector<size_t>> {
    std::vector<size_t> map(node->output_schema.size(), 0);
    for (size_t out_i = 0; out_i < node->output_schema.size(); ++out_i) {
      const Attribute& target = node->output_schema.at(out_i);
      bool found = false;
      for (size_t i = 0; i < side.size(); ++i) {
        if (node->renaming.Apply(side.at(i)) == target) {
          map[out_i] = i;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::TypeError("difference operand missing attribute " +
                                 target.FullName());
      }
    }
    return map;
  };
  NED_ASSIGN_OR_RETURN(std::vector<size_t> lmap, mapping_for(ls));
  NED_ASSIGN_OR_RETURN(std::vector<size_t> rmap, mapping_for(rs));

  // Value set of the right operand (aligned through the renaming).
  std::unordered_set<Tuple, TupleHash> right_values;
  for (const TraceTuple& t : right) {
    NED_EXEC_TICK(scope.ctx);
    std::vector<Value> values;
    values.reserve(rmap.size());
    for (size_t i : rmap) values.push_back(t.values.at(i));
    right_values.insert(Tuple(std::move(values)));
  }

  // Left tuples whose aligned value has no right counterpart survive; the
  // lineage of a survivor is its left lineage (Cui & Widom difference
  // lineage). Value-equal left tuples merge under set semantics.
  std::unordered_map<Tuple, size_t, TupleHash> seen;
  std::vector<TraceTuple> out;
  for (const TraceTuple& t : left) {
    NED_EXEC_TICK(scope.ctx);
    std::vector<Value> values;
    values.reserve(lmap.size());
    for (size_t i : lmap) values.push_back(t.values.at(i));
    Tuple mapped(std::move(values));
    if (right_values.count(mapped) > 0) continue;
    auto [it, inserted] = seen.emplace(mapped, out.size());
    if (inserted) {
      TraceTuple o;
      o.rid = scope.NextRid();
      o.values = std::move(mapped);
      o.preds = {t.rid};
      o.lineage = t.lineage;
      ChargeTuple(scope.ctx, o);
      out.push_back(std::move(o));
    } else {
      TraceTuple& o = out[it->second];
      o.preds.push_back(t.rid);
      o.lineage = BaseSetUnion(o.lineage, t.lineage);
    }
  }
  return out;
}

Result<std::vector<TraceTuple>> Evaluator::ComputeAggregate(
    const OperatorNode* node, EvalScope& scope) {
  const std::vector<TraceTuple>& in = *TryGetOutput(node->children[0].get());
  const Schema& child_schema = node->children[0]->output_schema;

  std::vector<size_t> group_idx;
  for (const auto& g : node->group_by) {
    NED_ASSIGN_OR_RETURN(size_t idx, child_schema.Resolve(g));
    group_idx.push_back(idx);
  }

  // Group, preserving first-seen order.
  std::unordered_map<Tuple, size_t, TupleHash> group_of;
  std::vector<std::vector<const TraceTuple*>> groups;
  std::vector<Tuple> keys;
  for (const TraceTuple& t : in) {
    NED_EXEC_TICK(scope.ctx);
    std::vector<Value> key_values;
    key_values.reserve(group_idx.size());
    for (size_t idx : group_idx) key_values.push_back(t.values.at(idx));
    Tuple key(std::move(key_values));
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) {
      groups.emplace_back();
      keys.push_back(key);
    }
    groups[it->second].push_back(&t);
  }

  std::vector<TraceTuple> out;
  out.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    NED_ASSIGN_OR_RETURN(
        std::vector<Tuple> agg_rows,
        ComputeAggregateTuples(node->group_by, node->aggregates, groups[g],
                               child_schema, node->output_schema, scope.ctx));
    NED_CHECK(agg_rows.size() == 1);
    TraceTuple o;
    o.rid = scope.NextRid();
    o.values = std::move(agg_rows[0]);
    for (const TraceTuple* member : groups[g]) {
      NED_EXEC_TICK(scope.ctx);
      o.preds.push_back(member->rid);
      o.lineage = BaseSetUnion(o.lineage, member->lineage);
    }
    ChargeTuple(scope.ctx, o);
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace ned
