/// \file evaluator.h
/// \brief Lineage-tracking, node-at-a-time query evaluation.
///
/// QueryInput materialises the query input instance I_Q (Def. 2.3): one tuple
/// list per *alias*, with stable base TupleIds. A stored relation backing two
/// aliases (self-join) yields two disjoint id ranges -- the formal device that
/// lets NedExplain place compatible tuples in the correct relation instance.
///
/// Evaluator computes each node's output on demand (memoized), which lets
/// NedExplain drive evaluation bottom-up and stop early (Alg. 2) without ever
/// touching operators above the termination point.

#ifndef NED_EXEC_EVALUATOR_H_
#define NED_EXEC_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/query_tree.h"
#include "exec/exec_context.h"
#include "exec/lineage.h"

namespace ned {

/// The materialised query input instance I_Q.
class QueryInput {
 public:
  /// Instantiates every scan alias of `tree` from `db`. When `ctx` is given,
  /// materialisation charges its budgets and honours its deadline/cancel.
  static Result<QueryInput> Build(const QueryTree& tree, const Database& db,
                                  ExecContext* ctx = nullptr);

  /// Tuples of one alias; ids are stable across evaluations.
  Result<const std::vector<TraceTuple>*> AliasTuples(
      const std::string& alias) const;
  Result<const Schema*> AliasSchema(const std::string& alias) const;

  /// Aliases in scan (bottom-up) order.
  const std::vector<std::string>& aliases() const { return alias_order_; }

  /// The base tuple with id `id`, or nullptr.
  const TraceTuple* FindById(TupleId id) const;
  /// Alias that `id` belongs to ("" when unknown).
  std::string AliasOfId(TupleId id) const;

  /// Short human identifier, e.g. "C2.id:396" (uses the alias's first
  /// attribute, which our datasets make the key, per paper footnote 2).
  std::string DisplayTuple(TupleId id) const;

  size_t TotalTuples() const;

 private:
  struct AliasData {
    Schema schema;
    std::vector<TraceTuple> tuples;
    uint32_t ordinal = 0;
  };
  std::map<std::string, AliasData> by_alias_;
  std::vector<std::string> alias_order_;  // index = alias ordinal
};

/// Memoizing bottom-up evaluator over one (tree, input) pair. An optional
/// ExecContext makes every operator interruptible: limits are checked at
/// operator boundaries and every kCheckInterval rows inside the
/// join/aggregate inner loops, and a tripped limit surfaces as a
/// kDeadlineExceeded / kResourceExhausted / kCancelled status.
class Evaluator {
 public:
  Evaluator(const QueryTree* tree, const QueryInput* input,
            ExecContext* ctx = nullptr)
      : tree_(tree), input_(input), ctx_(ctx) {}

  /// Output of `node`, evaluating (and caching) descendants as needed.
  Result<const std::vector<TraceTuple>*> EvalNode(const OperatorNode* node);

  /// Evaluates the whole tree; returns the root output.
  Result<const std::vector<TraceTuple>*> EvalAll() {
    return EvalNode(tree_->root());
  }

  /// Cached output of `node`, or nullptr if not yet evaluated.
  const std::vector<TraceTuple>* TryGetOutput(const OperatorNode* node) const;

  /// Children outputs of `node` (its manipulation's input instance),
  /// evaluating them if necessary.
  Result<std::vector<const std::vector<TraceTuple>*>> InputsOf(
      const OperatorNode* node);

  /// Total intermediate tuples materialised so far (perf counters).
  size_t tuples_produced() const { return tuples_produced_; }

  const QueryTree& tree() const { return *tree_; }
  const QueryInput& input() const { return *input_; }
  /// The governing context (nullptr when evaluation is unlimited).
  ExecContext* exec_context() const { return ctx_; }

 private:
  Result<std::vector<TraceTuple>> Compute(const OperatorNode* node);
  Result<std::vector<TraceTuple>> ComputeSelect(const OperatorNode* node);
  Result<std::vector<TraceTuple>> ComputeProject(const OperatorNode* node);
  Result<std::vector<TraceTuple>> ComputeJoin(const OperatorNode* node);
  Result<std::vector<TraceTuple>> ComputeUnion(const OperatorNode* node);
  Result<std::vector<TraceTuple>> ComputeDifference(const OperatorNode* node);
  Result<std::vector<TraceTuple>> ComputeAggregate(const OperatorNode* node);

  Rid NextRid() { return next_rid_++; }

  /// Charges `t` against the context's budgets (no-op without a context).
  void ChargeTuple(const TraceTuple& t) {
    if (ctx_ == nullptr) return;
    ctx_->ChargeRows(1);
    ctx_->ChargeBytes(sizeof(TraceTuple) + t.values.size() * sizeof(Value) +
                      t.lineage.size() * sizeof(TupleId) +
                      t.preds.size() * sizeof(Rid));
  }

  const QueryTree* tree_;
  const QueryInput* input_;
  ExecContext* ctx_ = nullptr;
  std::unordered_map<const OperatorNode*, std::vector<TraceTuple>> outputs_;
  Rid next_rid_ = kIntermediateRidBase + 1;
  size_t tuples_produced_ = 0;
};

/// Computes the aggregate output tuples for `node` over an arbitrary input
/// tuple list (used both by the evaluator and by NedExplain's cond-alpha
/// checks, which aggregate a subquery's *input*). `input_schema` types the
/// given tuples.
Result<std::vector<Tuple>> ComputeAggregateTuples(
    const std::vector<Attribute>& group_by, const std::vector<AggCall>& calls,
    const std::vector<const TraceTuple*>& input, const Schema& input_schema,
    const Schema& output_schema, ExecContext* ctx = nullptr);

}  // namespace ned

#endif  // NED_EXEC_EVALUATOR_H_
