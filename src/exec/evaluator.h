/// \file evaluator.h
/// \brief Lineage-tracking, node-at-a-time query evaluation.
///
/// QueryInput materialises the query input instance I_Q (Def. 2.3): one tuple
/// list per *alias*, with stable base TupleIds. A stored relation backing two
/// aliases (self-join) yields two disjoint id ranges -- the formal device that
/// lets NedExplain place compatible tuples in the correct relation instance.
///
/// Evaluator computes each node's output on demand (memoized), which lets
/// NedExplain drive evaluation bottom-up and stop early (Alg. 2) without ever
/// touching operators above the termination point. With a SubtreeCache
/// attached, memoization extends across evaluator instances: outputs are
/// keyed by subtree fingerprint + node ordinals + scanned-relation data
/// versions, and rids are deterministic per (node ordinal, row), so a hit is
/// bit-identical -- values, rids, preds, lineage -- to recomputation (the
/// property the differential cache sweep asserts; see docs/CACHING.md).

#ifndef NED_EXEC_EVALUATOR_H_
#define NED_EXEC_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/query_tree.h"
#include "exec/exec_context.h"
#include "exec/lineage.h"
#include "exec/parallel.h"

namespace ned {

class SubtreeCache;

/// The materialised query input instance I_Q.
class QueryInput {
 public:
  /// Instantiates every scan alias of `tree` from `db`. When `ctx` is given,
  /// materialisation charges its budgets and honours its deadline/cancel.
  static Result<QueryInput> Build(const QueryTree& tree, const Database& db,
                                  ExecContext* ctx = nullptr);

  /// Tuples of one alias; ids are stable across evaluations.
  Result<const std::vector<TraceTuple>*> AliasTuples(
      const std::string& alias) const;
  Result<const Schema*> AliasSchema(const std::string& alias) const;

  /// Aliases in scan (bottom-up) order.
  const std::vector<std::string>& aliases() const { return alias_order_; }

  /// Data-version stamp of the relation backing alias ordinal `ordinal`
  /// (Relation::data_version at Build time). Cache keys pin these so a
  /// reloaded relation can never satisfy a lookup made against new data.
  uint64_t AliasDataVersion(size_t ordinal) const {
    return by_alias_.at(alias_order_.at(ordinal)).data_version;
  }

  /// The base tuple with id `id`, or nullptr.
  const TraceTuple* FindById(TupleId id) const;
  /// Alias that `id` belongs to ("" when unknown).
  std::string AliasOfId(TupleId id) const;

  /// Short human identifier, e.g. "C2.id:396" (uses the alias's first
  /// attribute, which our datasets make the key, per paper footnote 2).
  std::string DisplayTuple(TupleId id) const;

  size_t TotalTuples() const;

 private:
  struct AliasData {
    Schema schema;
    std::vector<TraceTuple> tuples;
    uint32_t ordinal = 0;
    uint64_t data_version = 0;
  };
  std::map<std::string, AliasData> by_alias_;
  std::vector<std::string> alias_order_;  // index = alias ordinal
};

/// Memoizing bottom-up evaluator over one (tree, input) pair. An optional
/// ExecContext makes every operator interruptible: limits are checked at
/// operator boundaries and every kCheckInterval rows inside the
/// join/aggregate inner loops, and a tripped limit surfaces as a
/// kDeadlineExceeded / kResourceExhausted / kCancelled status.
///
/// An optional SubtreeCache shares materialized non-leaf outputs across
/// evaluator instances (and threads; the cache carries its own lock).
/// Cache hits replay the exact row/byte charges recomputation would have
/// made -- tick-safe, so a governed evaluation can still trip mid-hit --
/// keeping budget accounting independent of cache luck.
class Evaluator {
 public:
  Evaluator(const QueryTree* tree, const QueryInput* input,
            ExecContext* ctx = nullptr, SubtreeCache* cache = nullptr)
      : tree_(tree), input_(input), ctx_(ctx), cache_(cache) {
    for (size_t i = 0; i < tree_->bottom_up().size(); ++i) {
      node_ordinal_.emplace(tree_->bottom_up()[i], i);
    }
  }

  /// Output of `node`, evaluating (and caching) descendants as needed.
  Result<const std::vector<TraceTuple>*> EvalNode(const OperatorNode* node);

  /// Evaluates `nodes` (typically one TabQ level of sibling subtrees),
  /// leaving each memoized as if EvalNode had been called in order. When the
  /// context carries a task pool, nodes whose children are all evaluated are
  /// computed concurrently on worker shards and folded back in node order --
  /// answers, rids, charges and cache insertions are identical to the serial
  /// walk (docs/PARALLELISM.md). Without parallelism this is exactly the
  /// EvalNode loop.
  Status EvalNodes(const std::vector<const OperatorNode*>& nodes);

  /// Evaluates the whole tree; returns the root output.
  Result<const std::vector<TraceTuple>*> EvalAll() {
    return EvalNode(tree_->root());
  }

  /// Cached output of `node`, or nullptr if not yet evaluated.
  const std::vector<TraceTuple>* TryGetOutput(const OperatorNode* node) const;

  /// Children outputs of `node` (its manipulation's input instance),
  /// evaluating them if necessary.
  Result<std::vector<const std::vector<TraceTuple>*>> InputsOf(
      const OperatorNode* node);

  /// Total intermediate tuples materialised so far (perf counters). Tuples
  /// served from the subtree cache count too: they are materialized state of
  /// this evaluation regardless of who computed them.
  size_t tuples_produced() const { return tuples_produced_; }

  /// Subtree-cache traffic of this evaluator (0/0 when no cache attached).
  size_t cache_hits() const { return cache_hits_; }
  size_t cache_misses() const { return cache_misses_; }

  const QueryTree& tree() const { return *tree_; }
  const QueryInput& input() const { return *input_; }
  /// The governing context (nullptr when evaluation is unlimited).
  ExecContext* exec_context() const { return ctx_; }

 private:
  using Rows = std::shared_ptr<const std::vector<TraceTuple>>;

  /// One Compute invocation's evaluation scope: the governing context (the
  /// evaluator's own, or a worker shard's during sibling fan-out) and the
  /// rid counter of the node being computed. Threading this explicitly --
  /// instead of evaluator members -- is what lets detached sibling Computes
  /// run concurrently without sharing mutable state.
  struct EvalScope {
    ExecContext* ctx = nullptr;
    Rid next_rid = 0;
    Rid NextRid() { return next_rid++; }
  };

  Result<std::vector<TraceTuple>> Compute(const OperatorNode* node,
                                          EvalScope& scope);
  Result<std::vector<TraceTuple>> ComputeSelect(const OperatorNode* node,
                                                EvalScope& scope);
  Result<std::vector<TraceTuple>> ComputeProject(const OperatorNode* node,
                                                 EvalScope& scope);
  Result<std::vector<TraceTuple>> ComputeJoin(const OperatorNode* node,
                                              EvalScope& scope);
  Result<std::vector<TraceTuple>> ComputeUnion(const OperatorNode* node,
                                               EvalScope& scope);
  Result<std::vector<TraceTuple>> ComputeDifference(const OperatorNode* node,
                                                    EvalScope& scope);
  Result<std::vector<TraceTuple>> ComputeAggregate(const OperatorNode* node,
                                                   EvalScope& scope);

  /// Runs `morsel(begin, end, shard, out)` over every partition of `plan`
  /// on the scope's task pool, then merges partition outputs in partition
  /// order, assigning rids from `scope` as rows are appended -- the step
  /// that makes partitioned output byte-identical to the serial loop.
  /// Worker charges fold into scope.ctx at each partition boundary,
  /// followed by a coordinator checkpoint.
  Result<std::vector<TraceTuple>> RunPartitioned(
      EvalScope& scope, const MorselPlan& plan,
      const std::function<Status(size_t, size_t, ExecContext*,
                                 std::vector<TraceTuple>*)>& morsel);

  /// Replays a subtree-cache hit for `node` into outputs_ (charges + ticks
  /// as recomputation would make). Returns false on miss. Caller must have
  /// established cacheability.
  Result<bool> TryReplayCacheHit(const OperatorNode* node);

  /// Computes `node` (children must be evaluated), stores + cache-inserts
  /// the result. The tail half of EvalNode, shared with EvalNodes.
  Result<const std::vector<TraceTuple>*> ComputeAndStore(
      const OperatorNode* node);

  /// First rid of `node`'s output: top bit | (node ordinal + 1) << 40. Every
  /// node owns a disjoint rid range and row i of its output always gets base
  /// + i, which is what makes cached outputs replayable verbatim.
  Rid RidBaseFor(const OperatorNode* node) const {
    return kIntermediateRidBase |
           ((static_cast<Rid>(node_ordinal_.at(node)) + 1) << 40);
  }

  /// Cache key of the subtree rooted at `node`: structural fingerprint +
  /// node ordinals + (for scans) alias ordinal and relation data version.
  /// Memoized per node; see docs/CACHING.md for the collision argument.
  const std::string& CacheKeyFor(const OperatorNode* node);

  /// Charges `t` against `ctx`'s budgets (no-op without a context). Static:
  /// parallel workers charge their shard context, not the evaluator's.
  static void ChargeTuple(ExecContext* ctx, const TraceTuple& t) {
    if (ctx == nullptr) return;
    ctx->ChargeRows(1);
    ctx->ChargeBytes(sizeof(TraceTuple) + t.values.size() * sizeof(Value) +
                     t.lineage.size() * sizeof(TupleId) +
                     t.preds.size() * sizeof(Rid));
  }

  const QueryTree* tree_;
  const QueryInput* input_;
  ExecContext* ctx_ = nullptr;
  SubtreeCache* cache_ = nullptr;
  std::unordered_map<const OperatorNode*, Rows> outputs_;
  std::unordered_map<const OperatorNode*, size_t> node_ordinal_;
  std::unordered_map<const OperatorNode*, std::string> cache_keys_;
  size_t tuples_produced_ = 0;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
};

/// Computes the aggregate output tuples for `node` over an arbitrary input
/// tuple list (used both by the evaluator and by NedExplain's cond-alpha
/// checks, which aggregate a subquery's *input*). `input_schema` types the
/// given tuples.
Result<std::vector<Tuple>> ComputeAggregateTuples(
    const std::vector<Attribute>& group_by, const std::vector<AggCall>& calls,
    const std::vector<const TraceTuple*>& input, const Schema& input_schema,
    const Schema& output_schema, ExecContext* ctx = nullptr);

}  // namespace ned

#endif  // NED_EXEC_EVALUATOR_H_
