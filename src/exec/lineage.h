/// \file lineage.h
/// \brief Lineage-carrying tuples (Cui & Widom lineage, paper Sec. 2.3).
///
/// Every materialized tuple carries (1) the set of *base* tuples of I_Q in
/// its lineage and (2) the runtime ids of its *immediate predecessors* in the
/// child outputs. (1) drives the valid-successor test `lineage(t) subseteq D`
/// (Notation 2.1); (2) gives the per-manipulation successor relation used by
/// FindSuccessors and the Why-Not baseline. This natively replaces the Trio
/// lineage service the original implementations queried.

#ifndef NED_EXEC_LINEAGE_H_
#define NED_EXEC_LINEAGE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "relational/tuple.h"

namespace ned {

/// Sorted, deduplicated set of base TupleIds.
using BaseSet = std::vector<TupleId>;

/// Merges two sorted BaseSets.
BaseSet BaseSetUnion(const BaseSet& a, const BaseSet& b);

/// True if every element of `subset` (sorted) is in `superset`.
bool BaseSetSubsetOf(const BaseSet& subset,
                     const std::unordered_set<TupleId>& superset);

/// True if `a` (sorted) and `b` (hash set) share an element.
bool BaseSetIntersects(const BaseSet& a,
                       const std::unordered_set<TupleId>& b);

/// Elements of `a` (sorted) also present in `b`.
BaseSet BaseSetIntersection(const BaseSet& a,
                            const std::unordered_set<TupleId>& b);

/// Renders a tuple's provenance as a product of base-tuple names, e.g.
/// "A.aid:a1 * AB.aid:a1 * B.bid:b2" -- the how-provenance notation the
/// paper uses in Table 2 (t4 x t7 x t2). Declared here, defined in
/// evaluator.cpp (needs QueryInput for the display names).
class QueryInput;

/// Runtime id of a materialized tuple. For base tuples (scan inputs) this is
/// the base TupleId itself; intermediate tuples use ids with the top bit set.
using Rid = uint64_t;

inline constexpr Rid kIntermediateRidBase = 1ULL << 63;

inline bool IsBaseRid(Rid rid) { return (rid & kIntermediateRidBase) == 0; }

/// A materialized tuple with provenance.
struct TraceTuple {
  Rid rid = 0;
  Tuple values;
  std::vector<Rid> preds;  ///< immediate predecessors (rids in child outputs);
                           ///< empty for query-input tuples
  BaseSet lineage;         ///< sorted base TupleIds (never empty)

  std::string ToString(const Schema& schema) const {
    return values.ToString(schema);
  }
};

/// "A.aid:a1 * AB.aid:a1 * B.bid:b2" for the tuple's lineage.
std::string HowProvenance(const TraceTuple& tuple, const QueryInput& input);

}  // namespace ned

#endif  // NED_EXEC_LINEAGE_H_
