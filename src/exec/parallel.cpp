#include "exec/parallel.h"

#include "exec/exec_context.h"

namespace ned {

bool ParallelActive(const ExecContext* ctx) {
  return ctx != nullptr && ctx->task_pool() != nullptr && ctx->threads() > 1;
}

MorselPlan PlanFor(const ExecContext* ctx, size_t n) {
  if (!ParallelActive(ctx)) return MorselPlan{};
  return MorselPlan::For(n, ctx->threads(), ctx->parallel_min_rows());
}

TaskPool::TaskPool(int threads) {
  const int n = threads < 0 ? 0 : threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t TaskPool::DrainSection(Section& section) {
  size_t ran = 0;
  const size_t size = section.size;
  for (;;) {
    const size_t i = section.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= size) break;
    section.tasks[i]();
    ++ran;
    std::lock_guard<std::mutex> lock(section.mu);
    if (++section.done == size) section.done_cv.notify_all();
  }
  return ran;
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Section> section;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      section = queue_.front();
      // Pop eagerly once every task is claimed; otherwise leave the section
      // for sibling workers to share.
      if (section->next.load(std::memory_order_relaxed) >= section->size) {
        queue_.pop_front();
        continue;
      }
    }
    // Track the pool-thread high-watermark around actual task execution:
    // it bounds how many tasks ever run on pool threads simultaneously.
    const size_t now_active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
    size_t peak = peak_active_.load(std::memory_order_relaxed);
    while (now_active > peak &&
           !peak_active_.compare_exchange_weak(peak, now_active,
                                               std::memory_order_relaxed)) {
    }
    const size_t ran = DrainSection(*section);
    active_.fetch_sub(1, std::memory_order_relaxed);
    pool_tasks_run_.fetch_add(ran, std::memory_order_relaxed);
    {
      // Fully claimed (possibly by us); drop it from the queue if still there.
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty() && queue_.front() == section &&
          section->next.load(std::memory_order_relaxed) >= section->size) {
        queue_.pop_front();
      }
    }
  }
}

void TaskPool::RunAndWait(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1 || workers_.empty()) {
    // Nothing to hand off (or nobody to hand it to): run inline.
    for (auto& t : tasks) t();
    inline_tasks_run_.fetch_add(tasks.size(), std::memory_order_relaxed);
    return;
  }
  auto section = std::make_shared<Section>(tasks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(section);
  }
  work_cv_.notify_all();
  // Claim-based execution: the caller drains its own section, so the
  // section completes even if every pool worker is busy with other
  // sections (no nested-wait deadlock, graceful degradation to serial).
  const size_t ran = DrainSection(*section);
  inline_tasks_run_.fetch_add(ran, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(section->mu);
  section->done_cv.wait(lock, [&] { return section->done == section->size; });
}

MorselPlan MorselPlan::For(size_t n, int threads, size_t min_rows) {
  MorselPlan plan;
  plan.total = n;
  plan.chunk = n;
  if (threads < 2 || min_rows == 0 || n < 2 * min_rows) return plan;
  // Oversplit relative to the thread count so stragglers even out, but
  // never below min_rows per morsel.
  const size_t by_threads = static_cast<size_t>(threads) * 4;
  const size_t by_rows = n / min_rows;
  size_t parts = by_threads < by_rows ? by_threads : by_rows;
  if (parts < 2) parts = 2;
  plan.partitions = parts;
  plan.chunk = (n + parts - 1) / parts;
  // Recompute the partition count the chunk size actually yields (ceil
  // division can make trailing partitions empty otherwise).
  plan.partitions = (n + plan.chunk - 1) / plan.chunk;
  return plan;
}

}  // namespace ned
