/// \file parallel.h
/// \brief Bounded task pool + deterministic morsel partitioning for
/// intra-query parallelism.
///
/// Design goals (see docs/PARALLELISM.md for the full argument):
///
///  - *Bounded*: one TaskPool owns a fixed set of worker threads. Every
///    parallel section in the process draws from the same pool, so total
///    intra-query parallelism never exceeds the configured bound no matter
///    how many requests fan out concurrently (the property ned_stress
///    verifies via the peak_active() high-watermark).
///  - *Deadlock-free under saturation*: RunAndWait() is claim-based -- the
///    calling thread participates, draining tasks from its own section until
///    none remain. A section therefore always finishes even when every pool
///    thread is busy elsewhere (graceful degradation to serial execution),
///    which permits nested sections without thread-count reasoning.
///  - *Deterministic partitioning*: MorselPlan is a pure function of
///    (row count, thread count, minimum morsel size). Which thread executes
///    a morsel is scheduling-dependent; *what* each morsel computes and the
///    order partitions are merged in is not. Output identity with serial
///    evaluation is argued in the evaluator, not here.

#ifndef NED_EXEC_PARALLEL_H_
#define NED_EXEC_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ned {

/// A fixed set of worker threads executing claim-based task sections.
///
/// Thread model: RunAndWait may be called concurrently from any number of
/// threads (the service's request workers each run their own sections).
/// Tasks within one section run concurrently; the caller only returns once
/// every task of *its* section has finished, so task closures may reference
/// the caller's stack. A pool with zero threads is valid: the caller simply
/// runs its whole section inline.
class TaskPool {
 public:
  /// Creates `threads` workers (clamped at 0). The pool must outlive every
  /// section run against it.
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Runs every task in `tasks` and returns when all have completed. The
  /// calling thread claims tasks too (it is the guarantee of progress);
  /// idle pool workers pick up the rest. Tasks must not throw.
  void RunAndWait(std::vector<std::function<void()>>& tasks);

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// High-watermark of tasks ever running concurrently on *pool* threads
  /// (caller-inline execution is not counted: the caller's thread is
  /// already accounted for by whoever owns it). ned_stress asserts this
  /// never exceeds thread_count().
  size_t peak_active() const {
    return peak_active_.load(std::memory_order_relaxed);
  }
  /// Total tasks executed by pool threads (diagnostics).
  size_t pool_tasks_run() const {
    return pool_tasks_run_.load(std::memory_order_relaxed);
  }
  /// Total tasks executed inline by section callers (diagnostics).
  size_t inline_tasks_run() const {
    return inline_tasks_run_.load(std::memory_order_relaxed);
  }

 private:
  /// One RunAndWait call: a shared claim counter over a task vector. The
  /// vector lives on the caller's stack and the caller returns once
  /// done == size, so late workers must only touch Section fields (kept
  /// alive by shared_ptr) -- hence `size` is cached here rather than read
  /// through `tasks` after the last task completes.
  struct Section {
    explicit Section(std::vector<std::function<void()>>& t)
        : tasks(t), size(t.size()) {}
    std::vector<std::function<void()>>& tasks;
    const size_t size;
    std::atomic<size_t> next{0};  // next unclaimed task index
    std::mutex mu;
    std::condition_variable done_cv;
    size_t done = 0;  // guarded by mu
  };

  void WorkerLoop();
  /// Claims and runs tasks from `section` until none remain unclaimed.
  /// Returns the number of tasks this thread ran.
  size_t DrainSection(Section& section);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Section>> queue_;  // sections with unclaimed tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;

  std::atomic<size_t> active_{0};       // pool threads currently in a task
  std::atomic<size_t> peak_active_{0};  // high-watermark of active_
  std::atomic<size_t> pool_tasks_run_{0};
  std::atomic<size_t> inline_tasks_run_{0};
};

class ExecContext;

/// Deterministic partitioning of `total` rows into at most `threads`-scaled
/// morsels of at least `min_rows` each. A plan with partitions == 1 means
/// "stay serial" (too little data, or parallelism disabled).
struct MorselPlan {
  size_t total = 0;
  size_t partitions = 1;
  size_t chunk = 0;  // rows per partition (last partition may be short)

  /// Pure function of its arguments -- no globals, no hardware queries --
  /// so a given (n, threads, min_rows) always yields the same plan.
  static MorselPlan For(size_t n, int threads, size_t min_rows);

  bool active() const { return partitions > 1; }
  size_t begin(size_t i) const { return i * chunk; }
  size_t end(size_t i) const {
    const size_t e = (i + 1) * chunk;
    return e < total ? e : total;
  }
};

/// True when `ctx` carries a task pool and asks for more than one thread --
/// the single switch every parallel path checks, so threads <= 1 (or no
/// pool) takes the serial code byte-for-byte.
bool ParallelActive(const ExecContext* ctx);

/// Morsel plan for `n` input rows under `ctx` (an inactive plan when
/// parallelism is off or the input is below the activation threshold).
MorselPlan PlanFor(const ExecContext* ctx, size_t n);

}  // namespace ned

#endif  // NED_EXEC_PARALLEL_H_
