#include "exec/lineage.h"

#include <algorithm>

namespace ned {

BaseSet BaseSetUnion(const BaseSet& a, const BaseSet& b) {
  BaseSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool BaseSetSubsetOf(const BaseSet& subset,
                     const std::unordered_set<TupleId>& superset) {
  for (TupleId id : subset) {
    if (superset.count(id) == 0) return false;
  }
  return true;
}

bool BaseSetIntersects(const BaseSet& a, const std::unordered_set<TupleId>& b) {
  for (TupleId id : a) {
    if (b.count(id) > 0) return true;
  }
  return false;
}

BaseSet BaseSetIntersection(const BaseSet& a,
                            const std::unordered_set<TupleId>& b) {
  BaseSet out;
  for (TupleId id : a) {
    if (b.count(id) > 0) out.push_back(id);
  }
  return out;
}

}  // namespace ned
