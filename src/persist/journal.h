/// \file journal.h
/// \brief Append-only, CRC-framed, segment-rotating request journal.
///
/// The journal is the service's write-ahead log: an ACCEPT record is
/// durable before a request is admitted, a COMPLETE or SHED record before
/// its future resolves. Recovery (service.cpp) replays the records and
/// re-enqueues every request that was accepted but neither completed nor
/// shed -- that set is exactly what a crash can strand.
///
/// On-disk layout: `<dir>/seg-NNNNNN.wal`, each segment starting with an
/// 8-byte magic. Records are framed as
///
///   [u8 type][u32 payload_len][u64 seq][payload][u32 crc]
///
/// with the CRC covering header + payload. Open() scans segments in order
/// and stops at the FIRST record that fails its frame check -- torn tail,
/// flipped bit, truncated header, anything -- truncates the segment there
/// and deletes all later segments. Recovered records are therefore always
/// an exact prefix of what was appended: the journal never fabricates and
/// never resurrects bytes past a corruption. A fresh segment is started on
/// every Open, so recovery never appends after a truncation point.
///
/// Fsync policy trades latency for power-loss durability (process death --
/// including SIGKILL -- never loses write()n bytes; see docs/DURABILITY.md):
///   kEveryRecord  fsync before Append returns (group-commit safe default
///                 for tests; slowest)
///   kEveryNMs     background flusher fsyncs on an interval (default)
///   kOnRotate     fsync only when a segment closes

#ifndef NED_PERSIST_JOURNAL_H_
#define NED_PERSIST_JOURNAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "persist/crash_point.h"

namespace ned {

enum class JournalRecordType : uint8_t {
  kAccept = 1,    ///< payload = EncodeRequest(request)
  kComplete = 2,  ///< payload = key, status code, store key (may be empty)
  kShed = 3,      ///< payload = key; request finally failed or was shed
};

enum class FsyncPolicy : uint8_t { kEveryRecord, kEveryNMs, kOnRotate };

struct JournalOptions {
  std::string dir;
  /// Rotate to a new segment once the current one reaches this size.
  size_t segment_bytes = 4u << 20;
  FsyncPolicy fsync = FsyncPolicy::kEveryNMs;
  int fsync_interval_ms = 250;
  /// Optional deterministic crash injection (ned_crashtest, persist_test).
  CrashInjector* crash = nullptr;
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kAccept;
  uint64_t seq = 0;
  std::string payload;
};

struct JournalStats {
  uint64_t appends = 0;
  uint64_t syncs = 0;
  uint64_t rotations = 0;
  uint64_t bytes_written = 0;
  // Set by Open():
  uint64_t recovered_records = 0;
  uint64_t truncated_bytes = 0;   ///< bytes cut from the corrupt segment
  uint64_t dropped_segments = 0;  ///< segments after the corruption point
};

class Journal {
 public:
  /// Opens (creating if needed) the journal in `options.dir`, replays every
  /// intact record into `recovered`, repairs the tail as described above,
  /// and starts a fresh segment for new appends. Sequence numbers continue
  /// from the highest recovered one.
  static Result<std::unique_ptr<Journal>> Open(
      const JournalOptions& options, std::vector<JournalRecord>* recovered);

  /// Flushes, fsyncs and closes the current segment.
  ~Journal();

  /// Appends one record; thread-safe. Durability on return is governed by
  /// the fsync policy. Fails closed: any IO error (or injected crash)
  /// leaves the journal unusable for further appends.
  Status Append(JournalRecordType type, std::string_view payload);

  /// Forces an fsync of the current segment (used by drain and by the
  /// kEveryNMs flusher).
  Status Sync();

  /// Deletes every segment older than the one currently being written.
  /// Callers must first re-journal any state they still need (service
  /// recovery re-journals the completed book and pending requests).
  Status DropOldSegments();

  /// Lock-free thin read: the hot counters are atomics (tools and tests
  /// poll stats() concurrently with Append, which previously required
  /// taking mu_ on every read) and the recovery fields are written only by
  /// Open() before the journal is shared.
  JournalStats stats() const;

  /// Frames a record exactly as Append writes it (exposed for tests that
  /// build corrupt segments byte-by-byte).
  static std::string FrameRecord(JournalRecordType type, uint64_t seq,
                                 std::string_view payload);

  /// Segment magic ("NEDJRNL1").
  static constexpr char kMagic[8] = {'N', 'E', 'D', 'J', 'R', 'N', 'L', '1'};
  static std::string SegmentName(uint64_t index);

 private:
  Journal(const JournalOptions& options);

  Status OpenFreshSegmentLocked(uint64_t index);
  Status SyncLocked();
  Status WriteRawLocked(std::string_view bytes);
  void FlusherMain();

  const JournalOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t segment_index_ = 0;
  uint64_t segment_size_ = 0;
  uint64_t synced_size_ = 0;  ///< offset already fsynced (power-loss sim)
  uint64_t next_seq_ = 1;
  bool broken_ = false;  ///< set on first IO error; appends fail after
  /// Hot-path counters, atomic so stats() never takes mu_. Writers hold
  /// mu_ anyway; the atomics exist for the off-lock readers.
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> rotations_{0};
  std::atomic<uint64_t> bytes_written_{0};
  /// Recovery-time fields (recovered_records, truncated_bytes,
  /// dropped_segments): written by Open() before any other thread can see
  /// the journal, immutable afterwards.
  JournalStats open_stats_;

  std::thread flusher_;
  std::condition_variable flusher_cv_;
  bool stop_flusher_ = false;
  /// True while the flusher is fsyncing outside the lock; fd_ must not be
  /// closed (rotation) until it drops back to false.
  bool sync_in_progress_ = false;
  std::condition_variable sync_cv_;
};

}  // namespace ned

#endif  // NED_PERSIST_JOURNAL_H_
