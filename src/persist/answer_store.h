/// \file answer_store.h
/// \brief Durable, content-addressed store of completed why-not answers.
///
/// The persistent sibling of the in-memory AnswerCache (src/cache/): only
/// COMPLETE answers computed at full fidelity are ever stored -- never
/// partial (tripped) results, never brownout-degraded ones -- so a store
/// hit is always byte-identical to an uninterrupted recomputation.
///
/// Keys must survive restarts, so they cannot embed catalog snapshot
/// versions (which reset to 1 every run). MakeDurableAnswerKey instead
/// embeds DatabaseContentFingerprint: a reloaded-but-identical database
/// still hits; any content change misses by construction. The rest of the
/// key mirrors MakeAnswerCacheKey (normalized SQL, question text, budgets,
/// engine option bits).
///
/// Layout: `<dir>/entries/<fnv64-hex>.ans`, each entry a CRC-framed file
/// carrying its full key (hash collisions detected by key comparison, not
/// trusted to the file name) and the encoded AnswerSummary. Entries are
/// written via temp-file + atomic rename, so a crash at any instant leaves
/// either no entry or a complete entry; a torn or bit-flipped entry fails
/// its CRC on read and is deleted, reported as a miss. `<dir>/MANIFEST`
/// (rewritten atomically after each put) pins, for every database that
/// contributed answers, its content fingerprint and per-relation
/// data_versions -- provenance for operators inspecting the store.

#ifndef NED_PERSIST_ANSWER_STORE_H_
#define NED_PERSIST_ANSWER_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/report.h"
#include "persist/crash_point.h"

namespace ned {

/// Restart-stable key for a durable answer. `option_bits` is the service's
/// EngineOptionBits encoding; `question_text` is WhyNotQuestion::ToString().
std::string MakeDurableAnswerKey(const std::string& db_name,
                                 uint64_t content_fingerprint,
                                 const std::string& sql,
                                 const std::string& question_text,
                                 size_t row_budget, size_t memory_budget,
                                 uint64_t option_bits);

struct AnswerStoreOptions {
  std::string dir;
  /// fsync entry files and the manifest (power-loss durability; process
  /// death alone never needs it).
  bool fsync = false;
  CrashInjector* crash = nullptr;
};

/// Provenance recorded in the manifest for one database.
struct StoreManifestEntry {
  std::string db_name;
  uint64_t content_fingerprint = 0;
  /// (relation name, data_version, row count) at the time of the put.
  struct RelationPin {
    std::string name;
    uint64_t data_version = 0;
    uint64_t rows = 0;
  };
  std::vector<RelationPin> relations;
};

struct AnswerStoreStats {
  uint64_t puts = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t corrupt_dropped = 0;   ///< entries deleted on failed CRC/decode
  uint64_t entries_on_open = 0;   ///< intact-looking entries found by Open
};

class AnswerStore {
 public:
  /// Opens (creating if needed) the store, indexes existing entries and
  /// sweeps leftover temp files from interrupted writes.
  static Result<std::unique_ptr<AnswerStore>> Open(
      const AnswerStoreOptions& options);

  /// Returns the stored summary for `key`, or kNotFound. A corrupt entry is
  /// deleted and reported as kNotFound -- the store never fabricates.
  Result<AnswerSummary> Lookup(const std::string& key);

  /// Cheap index-only probe (no file read). May return true for an entry
  /// that Lookup subsequently drops as corrupt.
  bool Contains(const std::string& key) const;

  /// Stores `summary` under `key` and records `manifest` provenance.
  /// Idempotent: re-putting an existing key rewrites the same bytes.
  Status Put(const std::string& key, const AnswerSummary& summary,
             const StoreManifestEntry& manifest);

  AnswerStoreStats stats() const;
  size_t entry_count() const;

  static std::string EntryFileName(const std::string& key);

 private:
  explicit AnswerStore(const AnswerStoreOptions& options);

  Status WriteManifestLocked();
  std::string EntryPath(const std::string& key) const;

  const AnswerStoreOptions options_;

  mutable std::mutex mu_;
  /// Indexed entry file names (no dir) -> put generation. The generation
  /// bumps on every Put of that name; Lookup reads the entry file with mu_
  /// released and refuses to corrupt-drop a name whose generation moved
  /// during the read -- the stale bytes it saw belong to a file a
  /// concurrent Put has since replaced with a fresh valid entry.
  std::unordered_map<std::string, uint64_t> entry_files_;
  std::map<std::string, StoreManifestEntry> manifest_;  ///< by db_name
  AnswerStoreStats stats_;
};

}  // namespace ned

#endif  // NED_PERSIST_ANSWER_STORE_H_
