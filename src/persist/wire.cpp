#include "persist/wire.h"

#include <cstring>

#include "service/request.h"

namespace ned {

namespace {

constexpr uint8_t kRequestCodecVersion = 1;

}  // namespace

namespace wire {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool Reader::Take(size_t n, const char** p) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool Reader::GetU8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool Reader::GetU32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = r;
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = r;
  return true;
}

bool Reader::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Reader::GetDouble(double* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool Reader::GetStr(std::string* v) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  // A flipped length byte must not trigger a giant allocation.
  if (data_.size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  v->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

}  // namespace wire

namespace {

using wire::PutDouble;
using wire::PutI64;
using wire::PutStr;
using wire::PutU32;
using wire::PutU64;
using wire::PutU8;
using wire::Reader;

void EncodeValue(const Value& v, std::string* out) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutI64(out, v.as_int());
      break;
    case ValueType::kDouble:
      PutDouble(out, v.as_double());
      break;
    case ValueType::kString:
      PutStr(out, v.as_string());
      break;
  }
}

bool DecodeValue(Reader* r, Value* out) {
  uint8_t tag;
  if (!r->GetU8(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt: {
      int64_t v;
      if (!r->GetI64(&v)) return false;
      *out = Value::Int(v);
      return true;
    }
    case ValueType::kDouble: {
      double v;
      if (!r->GetDouble(&v)) return false;
      *out = Value::Real(v);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!r->GetStr(&s)) return false;
      *out = Value::Str(std::move(s));
      return true;
    }
  }
  return false;  // unknown tag: corrupt byte, not a crash
}

void EncodeQuestion(const WhyNotQuestion& q, std::string* out) {
  PutU32(out, static_cast<uint32_t>(q.ctuples().size()));
  for (const CTuple& tc : q.ctuples()) {
    PutU32(out, static_cast<uint32_t>(tc.fields().size()));
    for (const auto& [attr, cv] : tc.fields()) {
      PutStr(out, attr.qualifier);
      PutStr(out, attr.name);
      PutU8(out, cv.is_var ? 1 : 0);
      if (cv.is_var) {
        PutStr(out, cv.var);
      } else {
        EncodeValue(cv.constant, out);
      }
    }
    PutU32(out, static_cast<uint32_t>(tc.cond().size()));
    for (const CPred& pred : tc.cond()) {
      PutStr(out, pred.lhs_var);
      PutU8(out, static_cast<uint8_t>(pred.op));
      PutU8(out, pred.rhs_is_var ? 1 : 0);
      if (pred.rhs_is_var) {
        PutStr(out, pred.rhs_var);
      } else {
        EncodeValue(pred.rhs_const, out);
      }
    }
  }
}

bool DecodeQuestion(Reader* r, WhyNotQuestion* out) {
  uint32_t n_ctuples;
  if (!r->GetU32(&n_ctuples)) return false;
  WhyNotQuestion q;
  for (uint32_t i = 0; i < n_ctuples; ++i) {
    CTuple tc;
    uint32_t n_fields;
    if (!r->GetU32(&n_fields)) return false;
    for (uint32_t f = 0; f < n_fields; ++f) {
      std::string qualifier, name;
      uint8_t is_var;
      if (!r->GetStr(&qualifier) || !r->GetStr(&name) || !r->GetU8(&is_var)) {
        return false;
      }
      CValue cv;
      if (is_var != 0) {
        std::string var;
        if (!r->GetStr(&var)) return false;
        cv = CValue::Var(std::move(var));
      } else {
        Value v;
        if (!DecodeValue(r, &v)) return false;
        cv = CValue::Const(std::move(v));
      }
      tc.AddField(Attribute(std::move(qualifier), std::move(name)),
                  std::move(cv));
    }
    uint32_t n_conds;
    if (!r->GetU32(&n_conds)) return false;
    for (uint32_t c = 0; c < n_conds; ++c) {
      std::string lhs;
      uint8_t op, rhs_is_var;
      if (!r->GetStr(&lhs) || !r->GetU8(&op) || !r->GetU8(&rhs_is_var)) {
        return false;
      }
      if (op > static_cast<uint8_t>(CompareOp::kGe)) return false;
      if (rhs_is_var != 0) {
        std::string rhs;
        if (!r->GetStr(&rhs)) return false;
        tc.Where(CPred::VsVar(std::move(lhs), static_cast<CompareOp>(op),
                              std::move(rhs)));
      } else {
        Value v;
        if (!DecodeValue(r, &v)) return false;
        tc.Where(CPred::VsConst(std::move(lhs), static_cast<CompareOp>(op),
                                std::move(v)));
      }
    }
    q.AddCTuple(std::move(tc));
  }
  *out = std::move(q);
  return true;
}

void PutStrings(const std::vector<std::string>& v, std::string* out) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) PutStr(out, s);
}

bool GetStrings(Reader* r, std::vector<std::string>* out) {
  uint32_t n;
  if (!r->GetU32(&n)) return false;
  out->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!r->GetStr(&s)) return false;
    out->push_back(std::move(s));
  }
  return true;
}

}  // namespace

std::string EncodeRequest(const WhyNotRequest& request) {
  std::string out;
  PutU8(&out, kRequestCodecVersion);
  PutStr(&out, request.key);
  PutStr(&out, request.db_name);
  PutStr(&out, request.sql);
  EncodeQuestion(request.question, &out);
  PutU8(&out, static_cast<uint8_t>(request.priority));
  PutStr(&out, request.client_id);
  PutI64(&out, request.deadline_ms);
  PutU64(&out, request.row_budget);
  PutU64(&out, request.memory_budget);
  PutU64(&out, request.seed);
  PutI64(&out, request.threads);
  PutU64(&out, request.inject_fault_at_step);
  PutI64(&out, request.inject_transient_failures);
  const uint8_t flags =
      (request.bypass_answer_cache ? 1u : 0u) |
      (request.engine_options.enable_early_termination ? 2u : 0u) |
      (request.engine_options.compute_secondary ? 4u : 0u) |
      (request.engine_options.keep_tabq_dump ? 8u : 0u);
  PutU8(&out, flags);
  return out;
}

Status DecodeRequest(std::string_view payload, WhyNotRequest* out) {
  Reader r(payload);
  uint8_t version;
  if (!r.GetU8(&version) || version != kRequestCodecVersion) {
    return Status::ParseError("journal request record: bad codec version");
  }
  WhyNotRequest req;
  uint8_t priority = 0, flags = 0;
  int64_t threads = 0, transients = 0;
  uint64_t row_budget = 0, memory_budget = 0;
  bool ok = r.GetStr(&req.key) && r.GetStr(&req.db_name) && r.GetStr(&req.sql);
  ok = ok && DecodeQuestion(&r, &req.question);
  ok = ok && r.GetU8(&priority) && r.GetStr(&req.client_id) &&
       r.GetI64(&req.deadline_ms) && r.GetU64(&row_budget) &&
       r.GetU64(&memory_budget) && r.GetU64(&req.seed) && r.GetI64(&threads) &&
       r.GetU64(&req.inject_fault_at_step) && r.GetI64(&transients) &&
       r.GetU8(&flags);
  if (!ok || !r.AtEnd() || priority >= kPriorityClasses) {
    return Status::ParseError("journal request record: truncated or corrupt");
  }
  req.priority = static_cast<Priority>(priority);
  req.row_budget = static_cast<size_t>(row_budget);
  req.memory_budget = static_cast<size_t>(memory_budget);
  req.threads = static_cast<int>(threads);
  req.inject_transient_failures = static_cast<int>(transients);
  req.bypass_answer_cache = (flags & 1u) != 0;
  req.engine_options.enable_early_termination = (flags & 2u) != 0;
  req.engine_options.compute_secondary = (flags & 4u) != 0;
  req.engine_options.keep_tabq_dump = (flags & 8u) != 0;
  *out = std::move(req);
  return Status::OK();
}

void EncodeAnswerSummary(const AnswerSummary& summary, std::string* out) {
  PutStrings(summary.detailed, out);
  PutStrings(summary.condensed, out);
  PutStrings(summary.secondary, out);
  PutU64(out, summary.dir_total);
  PutU64(out, summary.indir_total);
  PutU64(out, summary.survivors_at_root);
  PutU8(out, summary.complete ? 1 : 0);
  PutU8(out, static_cast<uint8_t>(summary.tripped));
  PutStr(out, summary.completeness);
  PutU64(out, summary.subtree_cache_hits);
  PutU64(out, summary.subtree_cache_misses);
  PutI64(out, summary.degradation_level);
  PutStr(out, summary.degradation);
}

Status DecodeAnswerSummary(wire::Reader* r, AnswerSummary* out) {
  AnswerSummary s;
  uint64_t dir = 0, indir = 0, survivors = 0, hits = 0, misses = 0;
  int64_t degradation_level = 0;
  uint8_t complete = 0, tripped = 0;
  bool ok = GetStrings(r, &s.detailed) && GetStrings(r, &s.condensed) &&
            GetStrings(r, &s.secondary) && r->GetU64(&dir) &&
            r->GetU64(&indir) && r->GetU64(&survivors) && r->GetU8(&complete) &&
            r->GetU8(&tripped) && r->GetStr(&s.completeness) &&
            r->GetU64(&hits) && r->GetU64(&misses) &&
            r->GetI64(&degradation_level) && r->GetStr(&s.degradation);
  if (!ok || tripped > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::ParseError("answer summary: truncated or corrupt");
  }
  s.dir_total = static_cast<size_t>(dir);
  s.indir_total = static_cast<size_t>(indir);
  s.survivors_at_root = static_cast<size_t>(survivors);
  s.complete = complete != 0;
  s.tripped = static_cast<StatusCode>(tripped);
  s.subtree_cache_hits = static_cast<size_t>(hits);
  s.subtree_cache_misses = static_cast<size_t>(misses);
  s.degradation_level = static_cast<int>(degradation_level);
  *out = std::move(s);
  return Status::OK();
}

}  // namespace ned
