/// \file wire.h
/// \brief Binary codecs for the durability layer (journal + answer store).
///
/// Fixed little-endian framing with length-prefixed strings; every decoder
/// is bounds-checked and returns Status instead of crashing, because the
/// journal's recovery path feeds these decoders bytes that may have been
/// torn by a crash or flipped by a bad disk (persist_test fuzzes exactly
/// that). Doubles travel as raw IEEE-754 bit patterns, so a recovered
/// request or answer is byte-identical to what was journaled -- no
/// print/parse round-trip loss.
///
/// Checksums: Crc32 (IEEE, reflected) frames journal records and store
/// entries; Fnv1a64 names store entry files and fingerprints database
/// content. Both are fixed algorithms, stable across compilers and
/// processes -- std::hash is deliberately not used anywhere on disk.

#ifndef NED_PERSIST_WIRE_H_
#define NED_PERSIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.h"
#include "common/status.h"
#include "core/report.h"

namespace ned {

struct WhyNotRequest;  // service/request.h; codec only, no layering cycle

namespace wire {

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);
/// u32 length + raw bytes.
void PutStr(std::string* out, std::string_view s);

/// Bounds-checked sequential reader over an encoded buffer. Every Get
/// returns false (and poisons the reader) on truncation; decoders turn
/// that into a ParseError.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetDouble(double* v);
  bool GetStr(std::string* v);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Take(size_t n, const char** p);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wire

/// Full WhyNotRequest codec (key, content, scheduling identity, budgets,
/// chaos knobs, engine options and the structured why-not question). The
/// encoding is versioned; DecodeRequest rejects unknown versions.
std::string EncodeRequest(const WhyNotRequest& request);
Status DecodeRequest(std::string_view payload, WhyNotRequest* out);

/// AnswerSummary codec (used by COMPLETE journal records and store entries).
void EncodeAnswerSummary(const AnswerSummary& summary, std::string* out);
Status DecodeAnswerSummary(wire::Reader* reader, AnswerSummary* out);

}  // namespace ned

#endif  // NED_PERSIST_WIRE_H_
