/// \file crash_point.h
/// \brief Deterministic crash injection at durability IO boundaries.
///
/// Every place the journal or answer store touches the filesystem is
/// bracketed by a named CrashPoint. A test arms a CrashInjector with one
/// point and a countdown; when the Nth visit to that point fires, the
/// injector either aborts the operation mid-way (simulating process death
/// at exactly that instant) or, for the power-loss points, additionally
/// tells the caller to discard bytes that were written but never synced.
///
/// Injection is cooperative and in-process: the component returns a
/// kCrashInjected status and the test then re-opens the directory as a
/// fresh process would, asserting the recovery invariants. ned_crashtest
/// walks every point; the real-SIGKILL battery in the same tool covers the
/// uncooperative case.

#ifndef NED_PERSIST_CRASH_POINT_H_
#define NED_PERSIST_CRASH_POINT_H_

#include <atomic>
#include <cstdint>

namespace ned {

enum class CrashPoint : uint8_t {
  kNone = 0,
  // --- journal ---
  /// Before any bytes of a record reach the segment file.
  kJournalBeforeAppend,
  /// After a strict prefix of the record's frame was written (torn tail).
  kJournalTornAppend,
  /// Record fully written but not fsynced; simulates power loss by rolling
  /// the file back to the last synced offset.
  kJournalUnsyncedAppend,
  /// After the old segment is closed, before the new one exists.
  kJournalBetweenSegments,
  /// New segment created, magic header not yet written.
  kJournalBeforeSegmentMagic,
  // --- answer store ---
  /// Before the entry temp file is created.
  kStoreBeforeTemp,
  /// Temp file holds a strict prefix of the entry.
  kStoreTornTemp,
  /// Temp file complete, rename not yet issued.
  kStoreBeforeRename,
  /// Entry renamed into place, manifest not yet rewritten.
  kStoreBeforeManifest,
  /// Manifest temp written, rename of the manifest not yet issued.
  kStoreBeforeManifestRename,
};

/// Arms at most one (point, countdown) pair. Thread-safe: the journal's
/// flusher thread and service workers may hit points concurrently.
class CrashInjector {
 public:
  CrashInjector() = default;

  /// Fire the `count`-th time `point` is visited (count >= 1).
  void Arm(CrashPoint point, int count = 1) {
    point_.store(static_cast<uint8_t>(point), std::memory_order_relaxed);
    remaining_.store(count, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
  }

  void Disarm() { Arm(CrashPoint::kNone, 0); }

  /// Called by the instrumented code at each boundary. Returns true when
  /// the simulated crash should happen here.
  bool ShouldCrash(CrashPoint point) {
    if (static_cast<uint8_t>(point) !=
        point_.load(std::memory_order_relaxed)) {
      return false;
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) != 1) return false;
    fired_.store(true, std::memory_order_release);
    return true;
  }

  bool fired() const { return fired_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint8_t> point_{static_cast<uint8_t>(CrashPoint::kNone)};
  std::atomic<int> remaining_{0};
  std::atomic<bool> fired_{false};
};

}  // namespace ned

#endif  // NED_PERSIST_CRASH_POINT_H_
