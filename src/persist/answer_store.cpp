#include "persist/answer_store.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "cache/answer_cache.h"
#include "common/atomic_file.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/strings.h"
#include "persist/wire.h"

namespace ned {

namespace {

constexpr char kEntryMagic[8] = {'N', 'E', 'D', 'A', 'N', 'S', 'W', '1'};
constexpr char kManifestHeader[] = "NEDSTORE-MANIFEST v1";

Status CrashStatus(const char* where) {
  return Status::Unavailable(std::string("crash injected: ") + where);
}

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Temp-file + rename with crash injection at the store's IO boundaries.
/// `torn` leaves a half-written temp file behind (Open sweeps those);
/// `before_rename` leaves a complete temp file that was never published.
Status WriteFileWithCrash(const std::string& path, const std::string& content,
                          bool fsync, CrashInjector* crash, CrashPoint torn,
                          CrashPoint before_rename) {
  const std::string tmp = path + ".tmp";
  if (crash != nullptr && crash->ShouldCrash(torn)) {
    // Emulate the torn temp write: a prefix of the bytes under the temp
    // name, never renamed. Open() sweeps it on the next start.
    (void)AtomicWriteFile(tmp, content.substr(0, content.size() / 2), false);
    return CrashStatus("torn temp write");
  }
  NED_RETURN_NOT_OK(AtomicWriteFile(tmp, content, fsync));
  if (crash != nullptr && crash->ShouldCrash(before_rename)) {
    return CrashStatus("before rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return Status::Internal("rename failed onto " + path);
  }
  if (fsync) (void)FsyncParentDir(path);
  return Status::OK();
}

}  // namespace

std::string MakeDurableAnswerKey(const std::string& db_name,
                                 uint64_t content_fingerprint,
                                 const std::string& sql,
                                 const std::string& question_text,
                                 size_t row_budget, size_t memory_budget,
                                 uint64_t option_bits) {
  // Mirrors MakeAnswerCacheKey but replaces the process-local snapshot
  // version with the restart-stable content fingerprint.
  const std::string norm = NormalizeSqlText(sql);
  return StrCat("db=", db_name.size(), ":", db_name, "|fp=",
                HexU64(content_fingerprint), "|q=", norm.size(), ":", norm,
                "|w=", question_text.size(), ":", question_text, "|rb=",
                row_budget, "|mb=", memory_budget, "|o=", option_bits);
}

AnswerStore::AnswerStore(const AnswerStoreOptions& options)
    : options_(options) {}

std::string AnswerStore::EntryFileName(const std::string& key) {
  return HexU64(Fnv1a64(key)) + ".ans";
}

std::string AnswerStore::EntryPath(const std::string& key) const {
  return options_.dir + "/entries/" + EntryFileName(key);
}

Result<std::unique_ptr<AnswerStore>> AnswerStore::Open(
    const AnswerStoreOptions& options) {
  NED_RETURN_NOT_OK(EnsureDir(options.dir + "/entries"));
  std::unique_ptr<AnswerStore> store(new AnswerStore(options));

  const std::string entries_dir = options.dir + "/entries";
  DIR* d = ::opendir(entries_dir.c_str());
  if (d == nullptr) {
    return Status::Internal("cannot open store dir " + entries_dir);
  }
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".ans") == 0) {
      store->entry_files_.emplace(name, 0);
      ++store->stats_.entries_on_open;
    } else {
      // Leftover temp/marker from an interrupted write: never published,
      // safe to sweep.
      (void)::unlink((entries_dir + "/" + name).c_str());
    }
  }
  ::closedir(d);

  // The manifest is advisory provenance; parse leniently and drop
  // anything malformed rather than failing the open.
  auto manifest_text = ReadFile(options.dir + "/MANIFEST");
  if (manifest_text.ok()) {
    std::istringstream in(*manifest_text);
    std::string line;
    StoreManifestEntry current;
    bool have_db = false;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::string tag;
      fields >> tag;
      if (tag == "db") {
        if (have_db) store->manifest_[current.db_name] = current;
        current = StoreManifestEntry();
        std::string fp_hex;
        fields >> current.db_name >> fp_hex;
        current.content_fingerprint =
            std::strtoull(fp_hex.c_str(), nullptr, 16);
        have_db = !current.db_name.empty();
      } else if (tag == "rel" && have_db) {
        StoreManifestEntry::RelationPin pin;
        fields >> pin.name >> pin.data_version >> pin.rows;
        if (!pin.name.empty()) current.relations.push_back(std::move(pin));
      }
    }
    if (have_db) store->manifest_[current.db_name] = current;
  }
  return store;
}

Result<AnswerSummary> AnswerStore::Lookup(const std::string& key) {
  const std::string file_name = EntryFileName(key);
  uint64_t read_gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entry_files_.find(file_name);
    if (it == entry_files_.end()) {
      ++stats_.misses;
      return Status::NotFound("no stored answer");
    }
    read_gen = it->second;
  }
  const std::string path = options_.dir + "/entries/" + file_name;
  auto content = ReadFile(path);
  std::lock_guard<std::mutex> lock(mu_);
  bool corrupt = false;
  if (content.ok() && content->size() > sizeof(kEntryMagic) + 4 &&
      content->compare(0, sizeof(kEntryMagic),
                       std::string(kEntryMagic, sizeof(kEntryMagic))) == 0) {
    const std::string_view body =
        std::string_view(*content).substr(sizeof(kEntryMagic));
    wire::Reader crc_reader(body.substr(0, 4));
    uint32_t stored_crc = 0;
    crc_reader.GetU32(&stored_crc);
    const std::string_view payload = body.substr(4);
    if (Crc32(payload) == stored_crc) {
      wire::Reader reader(payload);
      std::string stored_key;
      AnswerSummary summary;
      if (reader.GetStr(&stored_key) &&
          DecodeAnswerSummary(&reader, &summary).ok() && reader.AtEnd()) {
        if (stored_key == key) {
          ++stats_.hits;
          return summary;
        }
        // Intact entry for a different key (FNV name collision): a miss,
        // not corruption -- leave the other key's answer alone.
        ++stats_.misses;
        return Status::NotFound("hash collision with different key");
      }
    }
    corrupt = true;
  } else {
    corrupt = true;
  }
  if (corrupt) {
    // Failed CRC or decode: what was read cannot be served. Delete the
    // entry (the answer is recomputable by construction) -- unless its put
    // generation moved while the file was being read with mu_ released:
    // then the unreadable bytes were a snapshot of a name a concurrent Put
    // has since atomically replaced with a valid entry, and dropping it
    // would destroy that freshly-written durable answer.
    auto it = entry_files_.find(file_name);
    if (it != entry_files_.end() && it->second == read_gen) {
      (void)::unlink(path.c_str());
      entry_files_.erase(it);
      ++stats_.corrupt_dropped;
    }
  }
  ++stats_.misses;
  return Status::NotFound("stored answer unreadable");
}

bool AnswerStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entry_files_.count(EntryFileName(key)) > 0;
}

Status AnswerStore::Put(const std::string& key, const AnswerSummary& summary,
                        const StoreManifestEntry& manifest) {
  std::string payload;
  wire::PutStr(&payload, key);
  EncodeAnswerSummary(summary, &payload);
  std::string content(kEntryMagic, sizeof(kEntryMagic));
  wire::PutU32(&content, Crc32(payload));
  content += payload;

  std::lock_guard<std::mutex> lock(mu_);
  CrashInjector* crash = options_.crash;
  if (crash != nullptr && crash->ShouldCrash(CrashPoint::kStoreBeforeTemp)) {
    return CrashStatus("before temp write");
  }
  NED_RETURN_NOT_OK(WriteFileWithCrash(
      EntryPath(key), content, options_.fsync, crash,
      CrashPoint::kStoreTornTemp, CrashPoint::kStoreBeforeRename));
  ++entry_files_[EntryFileName(key)];  // index + bump the put generation
  ++stats_.puts;
  manifest_[manifest.db_name] = manifest;
  if (crash != nullptr &&
      crash->ShouldCrash(CrashPoint::kStoreBeforeManifest)) {
    // Entry is durable and indexed; only the advisory manifest is stale.
    return CrashStatus("before manifest write");
  }
  return WriteManifestLocked();
}

Status AnswerStore::WriteManifestLocked() {
  std::string text(kManifestHeader);
  text += '\n';
  for (const auto& [db_name, entry] : manifest_) {
    text += StrCat("db ", db_name, " ", HexU64(entry.content_fingerprint),
                   "\n");
    for (const auto& pin : entry.relations) {
      text += StrCat("rel ", pin.name, " ", pin.data_version, " ", pin.rows,
                     "\n");
    }
  }
  return WriteFileWithCrash(options_.dir + "/MANIFEST", text, options_.fsync,
                            options_.crash, CrashPoint::kStoreTornTemp,
                            CrashPoint::kStoreBeforeManifestRename);
}

AnswerStoreStats AnswerStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AnswerStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entry_files_.size();
}

}  // namespace ned
