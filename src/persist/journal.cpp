#include "persist/journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/atomic_file.h"
#include "persist/wire.h"

namespace ned {

namespace {

// [u8 type][u32 payload_len][u64 seq] before the payload, u32 crc after.
constexpr size_t kHeaderBytes = 1 + 4 + 8;
constexpr size_t kCrcBytes = 4;
// A payload longer than this cannot be legitimate (the largest record is an
// ACCEPT carrying one encoded request); treat the length field as corrupt
// rather than trusting a flipped bit to demand a 3 GB allocation.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Status CrashStatus(const char* where) {
  return Status::Unavailable(std::string("crash injected: ") + where);
}

bool ParseSegmentIndex(const std::string& name, uint64_t* index) {
  // seg-NNNNNN.wal (index may outgrow six digits; parse whatever is there).
  if (name.size() < 9 || name.compare(0, 4, "seg-") != 0) return false;
  if (name.compare(name.size() - 4, 4, ".wal") != 0) return false;
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *index = v;
  return true;
}

Result<std::vector<uint64_t>> ListSegments(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("cannot open journal dir", dir);
  std::vector<uint64_t> indices;
  while (dirent* entry = ::readdir(d)) {
    uint64_t index = 0;
    if (ParseSegmentIndex(entry->d_name, &index)) indices.push_back(index);
  }
  ::closedir(d);
  std::sort(indices.begin(), indices.end());
  return indices;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("cannot open", path);
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read failed for", path);
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

}  // namespace

constexpr char Journal::kMagic[8];

std::string Journal::SegmentName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.wal",
                static_cast<unsigned long long>(index));
  return buf;
}

std::string Journal::FrameRecord(JournalRecordType type, uint64_t seq,
                                 std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size() + kCrcBytes);
  wire::PutU8(&frame, static_cast<uint8_t>(type));
  wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  wire::PutU64(&frame, seq);
  frame.append(payload.data(), payload.size());
  wire::PutU32(&frame, Crc32(frame));
  return frame;
}

Journal::Journal(const JournalOptions& options) : options_(options) {}

Result<std::unique_ptr<Journal>> Journal::Open(
    const JournalOptions& options, std::vector<JournalRecord>* recovered) {
  NED_CHECK(recovered != nullptr);
  recovered->clear();
  NED_RETURN_NOT_OK(EnsureDir(options.dir));
  NED_ASSIGN_OR_RETURN(std::vector<uint64_t> segments,
                       ListSegments(options.dir));

  std::unique_ptr<Journal> journal(new Journal(options));
  JournalStats& stats = journal->open_stats_;
  uint64_t max_seq = 0;
  bool corrupted = false;  // once set, every later segment is deleted

  for (size_t si = 0; si < segments.size(); ++si) {
    const std::string path =
        options.dir + "/" + SegmentName(segments[si]);
    if (corrupted) {
      // A valid record after a corruption point could fabricate history
      // out of order; drop the whole segment instead.
      (void)::unlink(path.c_str());
      ++stats.dropped_segments;
      continue;
    }
    NED_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
    size_t pos = 0;
    if (data.size() < sizeof(kMagic) ||
        std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
      // Header never made it (crash between create and magic) or is
      // corrupt: nothing in this segment is trustworthy.
      corrupted = true;
      stats.truncated_bytes += data.size();
      (void)::unlink(path.c_str());
      ++stats.dropped_segments;
      continue;
    }
    pos = sizeof(kMagic);
    while (pos < data.size()) {
      const size_t start = pos;
      bool valid = false;
      if (data.size() - start >= kHeaderBytes + kCrcBytes) {
        wire::Reader header(
            std::string_view(data).substr(start, kHeaderBytes));
        uint8_t type = 0;
        uint32_t len = 0;
        uint64_t seq = 0;
        header.GetU8(&type);
        header.GetU32(&len);
        header.GetU64(&seq);
        if (header.ok() && type >= 1 && type <= 3 &&
            len <= kMaxPayloadBytes &&
            data.size() - start >= kHeaderBytes + len + kCrcBytes) {
          const std::string_view framed =
              std::string_view(data).substr(start, kHeaderBytes + len);
          wire::Reader crc_reader(std::string_view(data).substr(
              start + kHeaderBytes + len, kCrcBytes));
          uint32_t stored_crc = 0;
          crc_reader.GetU32(&stored_crc);
          if (Crc32(framed) == stored_crc) {
            JournalRecord record;
            record.type = static_cast<JournalRecordType>(type);
            record.seq = seq;
            record.payload = std::string(framed.substr(kHeaderBytes));
            max_seq = std::max(max_seq, seq);
            recovered->push_back(std::move(record));
            ++stats.recovered_records;
            pos = start + kHeaderBytes + len + kCrcBytes;
            valid = true;
          }
        }
      }
      if (!valid) {
        // First bad frame: truncate here. Everything before is an exact
        // prefix of the append history; everything after is untrusted.
        corrupted = true;
        stats.truncated_bytes += data.size() - start;
        if (::truncate(path.c_str(), static_cast<off_t>(start)) != 0) {
          return ErrnoStatus("cannot truncate corrupt segment", path);
        }
        break;
      }
    }
  }

  journal->next_seq_ = max_seq + 1;
  const uint64_t fresh_index = segments.empty() ? 0 : segments.back() + 1;
  {
    std::lock_guard<std::mutex> lock(journal->mu_);
    NED_RETURN_NOT_OK(journal->OpenFreshSegmentLocked(fresh_index));
  }
  if (options.fsync == FsyncPolicy::kEveryNMs) {
    journal->flusher_ = std::thread([j = journal.get()] { j->FlusherMain(); });
  }
  return journal;
}

Journal::~Journal() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_flusher_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    (void)SyncLocked();
    // Trim the preallocation: a cleanly closed segment is exactly its
    // records (recovery discards a zero tail anyway, this just keeps
    // on-disk journals byte-exact for tools and tests).
    (void)::ftruncate(fd_, static_cast<off_t>(segment_size_));
    ::close(fd_);
    fd_ = -1;
  }
}

Status Journal::OpenFreshSegmentLocked(uint64_t index) {
  const std::string path = options_.dir + "/" + SegmentName(index);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return ErrnoStatus("cannot create segment", path);
  // Zero-fill the whole segment up front and fsync it once (PostgreSQL's
  // wal_init_zero). Appends then overwrite already-initialized blocks in
  // place: no i_size extension and no unwritten-extent conversion, so the
  // lazy flusher's fdatasync is a pure data flush that forces no
  // filesystem-journal commit -- those commits stall every concurrent
  // metadata op (the answer store's create+rename among them) and show up
  // directly in client Submit tail latency. posix_fallocate is NOT enough:
  // it leaves extents unwritten, and converting them on first write is
  // itself a metadata change that fdatasync must commit. Zeros past the
  // written tail decode as invalid frames, which recovery already truncates
  // away; a cleanly closed journal trims them in the destructor. Best
  // effort: if initialization fails (ENOSPC and friends), fall back to
  // grow-on-write.
  {
    const size_t target =
        std::max<size_t>(options_.segment_bytes, sizeof(kMagic));
    static const std::string zeros(1u << 16, '\0');
    size_t filled = 0;
    bool fill_ok = true;
    while (filled < target) {
      const size_t n = std::min(zeros.size(), target - filled);
      const ssize_t w = ::write(fd, zeros.data(), n);
      if (w < 0) {
        if (errno == EINTR) continue;
        fill_ok = false;
        break;
      }
      filled += static_cast<size_t>(w);
    }
    if (fill_ok) {
      (void)::fsync(fd);  // full fsync: the allocation is metadata
    } else {
      (void)::ftruncate(fd, 0);
    }
    if (::lseek(fd, 0, SEEK_SET) != 0) {
      ::close(fd);
      return ErrnoStatus("cannot rewind fresh segment", path);
    }
  }
  fd_ = fd;
  segment_index_ = index;
  segment_size_ = 0;
  synced_size_ = 0;
  if (options_.crash != nullptr &&
      options_.crash->ShouldCrash(CrashPoint::kJournalBeforeSegmentMagic)) {
    broken_ = true;
    return CrashStatus("before segment magic");
  }
  NED_RETURN_NOT_OK(WriteRawLocked(std::string_view(kMagic, sizeof(kMagic))));
  // The magic and the file's very existence must survive before any record
  // is acknowledged out of this segment.
  NED_RETURN_NOT_OK(SyncLocked());
  (void)FsyncParentDir(path);
  return Status::OK();
}

Status Journal::WriteRawLocked(std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      broken_ = true;
      return ErrnoStatus("write failed for segment",
                         SegmentName(segment_index_));
    }
    written += static_cast<size_t>(n);
  }
  segment_size_ += bytes.size();
  bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status Journal::SyncLocked() {
  if (fd_ < 0) return Status::Internal("journal closed");
  if (synced_size_ == segment_size_) return Status::OK();
  // fdatasync, not fsync: an append-only log needs the data and the file
  // size durable (both covered), not the inode's timestamps -- and skipping
  // the metadata commit is markedly cheaper on ext4.
  if (::fdatasync(fd_) != 0) {
    broken_ = true;
    return ErrnoStatus("fdatasync failed for segment",
                       SegmentName(segment_index_));
  }
  synced_size_ = segment_size_;
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Journal::Append(JournalRecordType type, std::string_view payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (broken_) return Status::Unavailable("journal broken by earlier failure");
  if (fd_ < 0) return Status::Internal("journal closed");
  CrashInjector* crash = options_.crash;

  if (crash != nullptr && crash->ShouldCrash(CrashPoint::kJournalBeforeAppend)) {
    broken_ = true;
    return CrashStatus("before append");
  }
  const std::string frame = FrameRecord(type, next_seq_, payload);
  if (crash != nullptr && crash->ShouldCrash(CrashPoint::kJournalTornAppend)) {
    // Write a strict prefix of the frame: exactly what a crash mid-write
    // leaves behind. Recovery must truncate it away.
    const size_t torn = std::max<size_t>(1, frame.size() / 2);
    (void)WriteRawLocked(std::string_view(frame).substr(0, torn));
    broken_ = true;
    return CrashStatus("torn append");
  }
  NED_RETURN_NOT_OK(WriteRawLocked(frame));
  if (crash != nullptr &&
      crash->ShouldCrash(CrashPoint::kJournalUnsyncedAppend)) {
    // Simulate power loss: bytes written but never fsynced vanish. Roll the
    // file back to the last synced offset.
    (void)::ftruncate(fd_, static_cast<off_t>(synced_size_));
    broken_ = true;
    return CrashStatus("unsynced append lost to power loss");
  }
  ++next_seq_;
  appends_.fetch_add(1, std::memory_order_relaxed);
  if (options_.fsync == FsyncPolicy::kEveryRecord) {
    NED_RETURN_NOT_OK(SyncLocked());
  }

  if (segment_size_ >= options_.segment_bytes) {
    // Rotate: the closing segment is always fsynced so rotation never
    // weakens durability below the configured policy. The flusher may be
    // fsyncing this fd outside the lock; it must finish before the close.
    while (sync_in_progress_) sync_cv_.wait(lock);
    NED_RETURN_NOT_OK(SyncLocked());
    ::close(fd_);
    fd_ = -1;
    if (crash != nullptr &&
        crash->ShouldCrash(CrashPoint::kJournalBetweenSegments)) {
      broken_ = true;
      return CrashStatus("between segments");
    }
    NED_RETURN_NOT_OK(OpenFreshSegmentLocked(segment_index_ + 1));
    rotations_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status Journal::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  if (broken_) return Status::Unavailable("journal broken by earlier failure");
  // An in-flight flusher fsync may already cover (part of) the dirty range;
  // let it publish before deciding whether anything is left to sync.
  while (sync_in_progress_) sync_cv_.wait(lock);
  return SyncLocked();
}

Status Journal::DropOldSegments() {
  uint64_t current = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current = segment_index_;
  }
  NED_ASSIGN_OR_RETURN(std::vector<uint64_t> segments,
                       ListSegments(options_.dir));
  for (uint64_t index : segments) {
    if (index >= current) continue;
    const std::string path = options_.dir + "/" + SegmentName(index);
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("cannot delete old segment", path);
    }
  }
  return Status::OK();
}

JournalStats Journal::stats() const {
  JournalStats out = open_stats_;
  out.appends = appends_.load(std::memory_order_relaxed);
  out.syncs = syncs_.load(std::memory_order_relaxed);
  out.rotations = rotations_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return out;
}

void Journal::FlusherMain() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.fsync_interval_ms));
  while (!stop_flusher_) {
    flusher_cv_.wait_for(lock, interval,
                         [this] { return stop_flusher_; });
    if (stop_flusher_) break;
    if (fd_ < 0 || broken_ || synced_size_ == segment_size_) continue;
    // fsync with the lock RELEASED: a lazy-mode flush must never stall
    // Append (the service's Submit path holds its own lock across Append,
    // so a blocked Append here becomes a blocked client). Capture the fd
    // and target offset, sync, re-lock, publish. Rotation waits on
    // sync_in_progress_ before closing the fd, so it cannot be closed (or
    // reused) under the fsync.
    sync_in_progress_ = true;
    const int fd = fd_;
    const uint64_t target = segment_size_;
    lock.unlock();
    const int rc = ::fdatasync(fd);
    lock.lock();
    sync_in_progress_ = false;
    sync_cv_.notify_all();
    if (fd != fd_) continue;  // defensive: a close site that did not wait
    if (rc != 0) {
      broken_ = true;
      continue;
    }
    synced_size_ = std::max(synced_size_, target);
    syncs_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ned
