#include "sql/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace ned {

bool Token::IsKeyword(const std::string& upper) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, upper);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = sql.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') {
          // A dot not followed by a digit ends the number (attr syntax).
          if (i + 1 >= n || !std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
            break;
          }
          is_double = true;
        }
        ++i;
      }
      std::string text = sql.substr(start, i - start);
      if (is_double) {
        tok.kind = TokenKind::kDouble;
        tok.literal = Value::Real(std::stod(text));
      } else {
        tok.kind = TokenKind::kInt;
        tok.literal = Value::Int(std::stoll(text));
      }
      tok.text = text;
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError(StrCat("unterminated string literal at ",
                                         tok.position));
      }
      tok.kind = TokenKind::kString;
      tok.literal = Value::Str(text);
      tok.text = text;
    } else {
      // Multi-char operators first.
      auto two = sql.substr(i, 2);
      if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
        tok.kind = TokenKind::kSymbol;
        tok.text = two == "<>" ? "!=" : two;
        i += 2;
      } else if (std::string(",.()*=<>").find(c) != std::string::npos) {
        tok.kind = TokenKind::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError(StrCat("unexpected character '", c, "' at ",
                                         i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace ned
