#include "sql/parser.h"

#include "common/strings.h"
#include "sql/lexer.h"

namespace ned {
namespace {

const char* kAggregateFunctions[] = {"sum", "count", "avg", "min", "max"};

bool IsAggregateFunction(const std::string& ident) {
  for (const char* fn : kAggregateFunctions) {
    if (EqualsIgnoreCase(ident, fn)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlQuery> Parse() {
    SqlQuery query;
    NED_ASSIGN_OR_RETURN(SqlSelectBlock block, ParseBlock());
    query.blocks.push_back(std::move(block));
    while (Peek().IsKeyword("UNION") || Peek().IsKeyword("EXCEPT")) {
      query.except_before.push_back(Peek().IsKeyword("EXCEPT"));
      Advance();
      NED_ASSIGN_OR_RETURN(SqlSelectBlock next, ParseBlock());
      query.blocks.push_back(std::move(next));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("trailing input after query");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(StrCat(msg, " (near offset ", Peek().position,
                                     ", token '", Peek().text, "')"));
  }

  Status Expect(const std::string& symbol) {
    if (!Peek().IsSymbol(symbol)) return Err("expected '" + symbol + "'");
    Advance();
    return Status::OK();
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!Peek().IsKeyword(kw)) return Err("expected " + kw);
    Advance();
    return Status::OK();
  }

  Result<Attribute> ParseColumn() {
    if (Peek().kind != TokenKind::kIdent) return Err("expected column name");
    std::string first = Advance().text;
    if (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        return Err("expected attribute after '.'");
      }
      return Attribute(first, Advance().text);
    }
    return Attribute("", first);
  }

  Result<SqlSelectItem> ParseSelectItem() {
    SqlSelectItem item;
    if (Peek().kind == TokenKind::kIdent && IsAggregateFunction(Peek().text) &&
        Peek(1).IsSymbol("(")) {
      item.is_aggregate = true;
      item.function = ToLower(Advance().text);
      NED_RETURN_NOT_OK(Expect("("));
      NED_ASSIGN_OR_RETURN(item.column, ParseColumn());
      NED_RETURN_NOT_OK(Expect(")"));
    } else {
      NED_ASSIGN_OR_RETURN(item.column, ParseColumn());
    }
    if (Peek().IsKeyword("AS")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) return Err("expected alias after AS");
      item.alias = Advance().text;
    }
    return item;
  }

  Result<SqlOperand> ParseOperand() {
    SqlOperand operand;
    switch (Peek().kind) {
      case TokenKind::kIdent: {
        operand.is_column = true;
        NED_ASSIGN_OR_RETURN(operand.column, ParseColumn());
        return operand;
      }
      case TokenKind::kInt:
      case TokenKind::kDouble:
      case TokenKind::kString:
        operand.literal = Advance().literal;
        return operand;
      default:
        return Err("expected column or literal");
    }
  }

  Result<CompareOp> ParseCompareOp() {
    if (Peek().kind != TokenKind::kSymbol) return Err("expected comparison");
    std::string sym = Advance().text;
    if (sym == "=") return CompareOp::kEq;
    if (sym == "!=") return CompareOp::kNe;
    if (sym == "<") {
      if (Peek().IsSymbol("=")) { Advance(); return CompareOp::kLe; }
      return CompareOp::kLt;
    }
    if (sym == "<=") return CompareOp::kLe;
    if (sym == ">") {
      if (Peek().IsSymbol("=")) { Advance(); return CompareOp::kGe; }
      return CompareOp::kGt;
    }
    if (sym == ">=") return CompareOp::kGe;
    return Err("unknown comparison operator '" + sym + "'");
  }

  Result<SqlSelectBlock> ParseBlock() {
    SqlSelectBlock block;
    NED_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    if (Peek().IsSymbol("*")) {
      Advance();
      block.select_star = true;
    } else {
      while (true) {
        NED_ASSIGN_OR_RETURN(SqlSelectItem item, ParseSelectItem());
        block.select.push_back(std::move(item));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    NED_RETURN_NOT_OK(ExpectKeyword("FROM"));
    while (true) {
      if (Peek().kind != TokenKind::kIdent) return Err("expected table name");
      std::string table = Advance().text;
      std::string alias = table;
      if (Peek().kind == TokenKind::kIdent && !Peek().IsKeyword("WHERE") &&
          !Peek().IsKeyword("GROUP") && !Peek().IsKeyword("UNION") &&
          !Peek().IsKeyword("EXCEPT")) {
        alias = Advance().text;
      }
      block.from.emplace_back(table, alias);
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      while (true) {
        SqlComparison comp;
        NED_ASSIGN_OR_RETURN(comp.left, ParseOperand());
        NED_ASSIGN_OR_RETURN(comp.op, ParseCompareOp());
        NED_ASSIGN_OR_RETURN(comp.right, ParseOperand());
        block.where.push_back(std::move(comp));
        if (!Peek().IsKeyword("AND")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      NED_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        NED_ASSIGN_OR_RETURN(Attribute col, ParseColumn());
        block.group_by.push_back(std::move(col));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    return block;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlQuery> ParseSql(const std::string& sql) {
  NED_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace ned
