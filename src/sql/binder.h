/// \file binder.h
/// \brief Name resolution: SQL AST -> logical QuerySpec.
///
/// The binder resolves (possibly unqualified) column references against the
/// FROM aliases, classifies WHERE conjuncts into equi-join predicates
/// (between two aliases) versus selections, and derives the renaming names
/// introduced by joins (Def. 2.1's fresh unqualified attributes).

#ifndef NED_SQL_BINDER_H_
#define NED_SQL_BINDER_H_

#include <string>

#include "algebra/query_tree.h"
#include "canonical/canonicalizer.h"
#include "canonical/query_spec.h"
#include "sql/ast.h"

namespace ned {

/// Binds a parsed query against `db`, producing a canonicalizable spec.
Result<QuerySpec> BindSql(const SqlQuery& ast, const Database& db);

/// One-stop: parse + bind + canonicalize.
Result<QueryTree> CompileSql(const std::string& sql, const Database& db,
                             const CanonicalizeOptions& options = {});

}  // namespace ned

#endif  // NED_SQL_BINDER_H_
