/// \file ast.h
/// \brief Abstract syntax of the SQL subset.
///
/// Grammar (keywords case-insensitive):
///   query   := block ((UNION | EXCEPT) block)*
///   block   := SELECT item (',' item)* FROM table (',' table)*
///              [WHERE comp (AND comp)*] [GROUP BY col (',' col)*]
///   item    := col | fn '(' col ')' [AS ident] | '*'
///   table   := ident [ident]                 -- table [alias]
///   comp    := operand cop operand           -- cop in = != <> < <= > >=
///   operand := col | int | decimal | 'string'
///   col     := ident | ident '.' ident

#ifndef NED_SQL_AST_H_
#define NED_SQL_AST_H_

#include <string>
#include <vector>

#include "relational/attribute.h"
#include "relational/value.h"

namespace ned {

/// A SELECT-list item: a plain column or an aggregate call.
struct SqlSelectItem {
  bool is_aggregate = false;
  std::string function;  ///< sum/count/avg/min/max when is_aggregate
  Attribute column;      ///< possibly unqualified; resolved by the binder
  std::string alias;     ///< AS name; defaulted by the binder when empty
};

/// One side of a comparison.
struct SqlOperand {
  bool is_column = false;
  Attribute column;
  Value literal;
};

/// A WHERE conjunct.
struct SqlComparison {
  SqlOperand left;
  CompareOp op = CompareOp::kEq;
  SqlOperand right;
};

/// One SELECT block.
struct SqlSelectBlock {
  bool select_star = false;
  std::vector<SqlSelectItem> select;
  std::vector<std::pair<std::string, std::string>> from;  ///< (table, alias)
  std::vector<SqlComparison> where;
  std::vector<Attribute> group_by;
};

/// A full query: one or more blocks joined by UNION / EXCEPT.
/// `except_before[i]` is true when blocks[i] and blocks[i+1] are connected
/// by EXCEPT rather than UNION.
struct SqlQuery {
  std::vector<SqlSelectBlock> blocks;
  std::vector<bool> except_before;
};

}  // namespace ned

#endif  // NED_SQL_AST_H_
