#include "sql/ast.h"

// AST types are plain data; this translation unit exists so the build
// exercises the header under the project's warning flags.
