/// \file parser.h
/// \brief Recursive-descent parser for the SQL subset.

#ifndef NED_SQL_PARSER_H_
#define NED_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace ned {

/// Parses `sql` into an AST. Errors carry the byte offset of the offending
/// token.
Result<SqlQuery> ParseSql(const std::string& sql);

}  // namespace ned

#endif  // NED_SQL_PARSER_H_
