#include "sql/binder.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "sql/parser.h"

namespace ned {
namespace {

/// Per-block name resolution context.
class BlockBinder {
 public:
  BlockBinder(const SqlSelectBlock& ast, const Database& db)
      : ast_(ast), db_(db) {}

  Result<QueryBlock> Bind() {
    QueryBlock block;
    NED_RETURN_NOT_OK(BindFrom(&block));
    NED_RETURN_NOT_OK(BindWhere(&block));
    NED_RETURN_NOT_OK(BindSelect(&block));
    return block;
  }

 private:
  Status BindFrom(QueryBlock* block) {
    if (ast_.from.empty()) return Status::InvalidArgument("empty FROM list");
    for (const auto& [table, alias] : ast_.from) {
      NED_ASSIGN_OR_RETURN(const Relation* rel, db_.GetRelation(table));
      if (alias_schemas_.count(alias) > 0) {
        return Status::InvalidArgument("duplicate alias in FROM: " + alias);
      }
      Schema qualified;
      for (const auto& a : rel->schema().attributes()) {
        qualified.Add(Attribute(alias, a.name));
      }
      alias_schemas_.emplace(alias, std::move(qualified));
      alias_order_.push_back(alias);
      block->tables.push_back({alias, table});
    }
    return Status::OK();
  }

  /// Resolves a (possibly unqualified) column reference to a qualified
  /// attribute of one alias.
  Result<Attribute> Resolve(const Attribute& ref) const {
    if (ref.qualified()) {
      auto it = alias_schemas_.find(ref.qualifier);
      if (it == alias_schemas_.end()) {
        return Status::NotFound("unknown alias: " + ref.qualifier);
      }
      if (!it->second.Contains(ref)) {
        return Status::NotFound("no attribute " + ref.FullName());
      }
      return ref;
    }
    std::optional<Attribute> found;
    for (const auto& alias : alias_order_) {
      const Schema& schema = alias_schemas_.at(alias);
      for (const auto& a : schema.attributes()) {
        if (a.name == ref.name) {
          if (found.has_value()) {
            return Status::InvalidArgument("ambiguous column: " + ref.name);
          }
          found = a;
        }
      }
    }
    if (!found.has_value()) {
      return Status::NotFound("unknown column: " + ref.name);
    }
    return *found;
  }

  std::string FreshJoinName(const Attribute& left, const Attribute& right) {
    std::string base = left.name == right.name
                           ? left.name
                           : left.name + "_" + right.name;
    std::string name = base;
    int suffix = 2;
    while (!used_names_.insert(name).second) {
      name = base + "_" + std::to_string(suffix++);
    }
    join_names_.push_back(name);
    return name;
  }

  /// Resolves a SELECT/GROUP BY reference: alias attributes first, then the
  /// fresh names introduced by join renamings ("SELECT name FROM M, R WHERE
  /// M.name = R.name" projects the renamed attribute).
  Result<Attribute> ResolveOutput(const Attribute& ref) const {
    Result<Attribute> direct = Resolve(ref);
    if (direct.ok()) return direct;
    if (!ref.qualified()) {
      for (const auto& name : join_names_) {
        if (name == ref.name) return Attribute::Unqualified(name);
      }
    }
    return direct;
  }

  Status BindWhere(QueryBlock* block) {
    for (const auto& comp : ast_.where) {
      if (comp.left.is_column && comp.right.is_column) {
        NED_ASSIGN_OR_RETURN(Attribute l, Resolve(comp.left.column));
        NED_ASSIGN_OR_RETURN(Attribute r, Resolve(comp.right.column));
        if (comp.op == CompareOp::kEq && l.qualifier != r.qualifier) {
          block->joins.push_back({l, r, FreshJoinName(l, r)});
          continue;
        }
        block->selections.push_back(
            Cmp(std::make_shared<ColumnRef>(l), comp.op,
                std::make_shared<ColumnRef>(r)));
        continue;
      }
      // Column-vs-literal (either side).
      if (comp.left.is_column) {
        NED_ASSIGN_OR_RETURN(Attribute l, Resolve(comp.left.column));
        block->selections.push_back(Cmp(std::make_shared<ColumnRef>(l),
                                        comp.op, Lit(comp.right.literal)));
      } else if (comp.right.is_column) {
        NED_ASSIGN_OR_RETURN(Attribute r, Resolve(comp.right.column));
        block->selections.push_back(Cmp(Lit(comp.left.literal),
                                        comp.op,
                                        std::make_shared<ColumnRef>(r)));
      } else {
        return Status::InvalidArgument(
            "WHERE conjunct compares two literals");
      }
    }
    return Status::OK();
  }

  Status BindSelect(QueryBlock* block) {
    if (ast_.select_star) return Status::OK();  // project everything

    bool any_aggregate = false;
    for (const auto& item : ast_.select) {
      if (item.is_aggregate) any_aggregate = true;
    }
    if (any_aggregate || !ast_.group_by.empty()) {
      AggSpec agg;
      for (const auto& g : ast_.group_by) {
        NED_ASSIGN_OR_RETURN(Attribute resolved, ResolveOutput(g));
        agg.group_by.push_back(resolved);
      }
      for (const auto& item : ast_.select) {
        if (!item.is_aggregate) {
          NED_ASSIGN_OR_RETURN(Attribute resolved, ResolveOutput(item.column));
          bool grouped = false;
          for (const auto& g : agg.group_by) {
            if (g == resolved) grouped = true;
          }
          if (!grouped) {
            return Status::InvalidArgument(
                "non-aggregated SELECT column must appear in GROUP BY: " +
                resolved.FullName());
          }
          block->projection.push_back(resolved);
          continue;
        }
        NED_ASSIGN_OR_RETURN(Attribute arg, ResolveOutput(item.column));
        AggFn fn;
        if (item.function == "sum") fn = AggFn::kSum;
        else if (item.function == "count") fn = AggFn::kCount;
        else if (item.function == "avg") fn = AggFn::kAvg;
        else if (item.function == "min") fn = AggFn::kMin;
        else if (item.function == "max") fn = AggFn::kMax;
        else return Status::InvalidArgument("unknown aggregate " + item.function);
        std::string out = item.alias.empty()
                              ? item.function + "_" + arg.name
                              : item.alias;
        if (!used_names_.insert(out).second) {
          return Status::InvalidArgument("duplicate output name: " + out);
        }
        agg.calls.push_back({fn, arg, out});
        block->projection.push_back(Attribute::Unqualified(out));
      }
      block->agg = std::move(agg);
      return Status::OK();
    }

    for (const auto& item : ast_.select) {
      NED_ASSIGN_OR_RETURN(Attribute resolved, ResolveOutput(item.column));
      block->projection.push_back(resolved);
    }
    return Status::OK();
  }

  const SqlSelectBlock& ast_;
  const Database& db_;
  std::map<std::string, Schema> alias_schemas_;
  std::vector<std::string> alias_order_;
  std::set<std::string> used_names_;
  std::vector<std::string> join_names_;
};

}  // namespace

Result<QuerySpec> BindSql(const SqlQuery& ast, const Database& db) {
  QuerySpec spec;
  for (const auto& block_ast : ast.blocks) {
    BlockBinder binder(block_ast, db);
    NED_ASSIGN_OR_RETURN(QueryBlock block, binder.Bind());
    spec.blocks.push_back(std::move(block));
  }
  for (bool except : ast.except_before) {
    spec.set_ops.push_back(except ? SetOpKind::kDifference
                                  : SetOpKind::kUnion);
  }
  // Set-op output renaming: `SELECT Co.lastname AS name ... UNION ...`
  // names the union's k-th output column after the first block's k-th
  // alias. Aggregate aliases already became the block's output name in
  // BindSelect, so carrying them through here is a no-op rename; plain
  // column aliases are only meaningful under a set op (the single-block
  // projection keeps its attribute names).
  if (spec.blocks.size() > 1 && !ast.blocks.front().select_star) {
    const auto& items = ast.blocks.front().select;
    bool any_alias = false;
    for (const auto& item : items) {
      if (!item.alias.empty() && !item.is_aggregate) any_alias = true;
    }
    if (any_alias) {
      const QueryBlock& first = spec.blocks.front();
      NED_CHECK(items.size() == first.projection.size());
      for (size_t k = 0; k < items.size(); ++k) {
        spec.union_names.push_back(items[k].alias.empty()
                                       ? first.projection[k].name
                                       : items[k].alias);
      }
    }
  }
  return spec;
}

Result<QueryTree> CompileSql(const std::string& sql, const Database& db,
                             const CanonicalizeOptions& options) {
  NED_ASSIGN_OR_RETURN(SqlQuery ast, ParseSql(sql));
  NED_ASSIGN_OR_RETURN(QuerySpec spec, BindSql(ast, db));
  return Canonicalize(spec, db, options);
}

}  // namespace ned
