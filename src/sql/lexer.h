/// \file lexer.h
/// \brief Tokenizer for the SQL subset (SELECT/FROM/WHERE/GROUP BY/UNION).

#ifndef NED_SQL_LEXER_H_
#define NED_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace ned {

enum class TokenKind {
  kIdent,    ///< bare identifier (keywords are classified by the parser)
  kInt,      ///< integer literal
  kDouble,   ///< decimal literal
  kString,   ///< 'single-quoted' string literal
  kSymbol,   ///< one of , . ( ) * = != <> < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< identifier/symbol text (identifiers keep case)
  Value literal;      ///< for kInt/kDouble/kString
  size_t position = 0;  ///< byte offset, for error messages

  bool IsSymbol(const std::string& s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword test on identifiers.
  bool IsKeyword(const std::string& upper) const;
};

/// Tokenizes `sql`; the final token is kEnd.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace ned

#endif  // NED_SQL_LEXER_H_
