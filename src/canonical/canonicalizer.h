/// \file canonicalizer.h
/// \brief Canonical query tree construction (paper Sec. 3.1, step 2b).
///
/// Two rationales drive the canonical form (quoted from the paper):
///  1. selections are favored as Why-Not answers over joins, so they are
///     pushed down -- placed "above and closest to the visibility frontier";
///  2. for aggregation queries, joins are organised so that a minimal
///     subquery V (the *breakpoint*) already joins every grouped and
///     aggregated attribute without cross products, maximising the
///     subqueries at which the aggregation condition can be verified.
///
/// Concretely: without aggregation every leaf is a breakpoint and selections
/// sit directly above the scans; with aggregation the relations feeding the
/// aggregation are joined first (a Steiner-style connected cover over the
/// join graph), V is marked, and selections over V's relations stack right
/// above it.

#ifndef NED_CANONICAL_CANONICALIZER_H_
#define NED_CANONICAL_CANONICALIZER_H_

#include <memory>

#include "algebra/query_tree.h"
#include "canonical/query_spec.h"

namespace ned {

/// Options for ablation experiments.
struct CanonicalizeOptions {
  /// When false, selections are NOT pushed toward the visibility frontier;
  /// they stack at the top of the join tree instead (naive placement). Used
  /// by the canonicalization ablation bench.
  bool place_selections_at_frontier = true;
};

/// Builds the canonical operator tree for one block (no union wrapper).
Result<std::unique_ptr<OperatorNode>> CanonicalizeBlock(
    const QueryBlock& block, const Database& db,
    const CanonicalizeOptions& options = {});

/// Builds the full canonical query tree for a (possibly union) spec and
/// finalizes it against `db`.
Result<QueryTree> Canonicalize(const QuerySpec& spec, const Database& db,
                               const CanonicalizeOptions& options = {});

/// Structural fingerprint of `spec`'s canonical tree over `db` (the whole
/// tree's SubtreeFingerprint; algebra/fingerprint.h). Two specs with equal
/// fingerprints canonicalize to structurally identical trees, so their
/// evaluations share every subtree-cache entry -- the cache tests use this
/// to prove fingerprint distinctness for same-shape/different-condition
/// queries without touching evaluator internals.
Result<std::string> CanonicalFingerprint(
    const QuerySpec& spec, const Database& db,
    const CanonicalizeOptions& options = {});

}  // namespace ned

#endif  // NED_CANONICAL_CANONICALIZER_H_
