#include "canonical/query_spec.h"

#include "common/strings.h"

namespace ned {

std::string QueryBlock::ToString() const {
  std::string out = "FROM ";
  std::vector<std::string> t;
  for (const auto& table : tables) {
    t.push_back(table.alias == table.table ? table.table
                                           : table.table + " " + table.alias);
  }
  out += Join(t, ", ");
  if (!joins.empty()) {
    std::vector<std::string> j;
    for (const auto& join : joins) {
      j.push_back(join.left.FullName() + "=" + join.right.FullName() + "->" +
                  join.out_name);
    }
    out += " JOINS " + Join(j, ", ");
  }
  if (!selections.empty()) {
    std::vector<std::string> s;
    for (const auto& sel : selections) s.push_back(sel->ToString());
    out += " WHERE " + Join(s, " AND ");
  }
  if (agg.has_value()) {
    std::vector<std::string> g, c;
    for (const auto& attr : agg->group_by) g.push_back(attr.FullName());
    for (const auto& call : agg->calls) c.push_back(call.ToString());
    out += " GROUP {" + Join(g, ",") + "} AGG {" + Join(c, ",") + "}";
  }
  if (!projection.empty()) {
    std::vector<std::string> p;
    for (const auto& attr : projection) p.push_back(attr.FullName());
    out += " SELECT " + Join(p, ", ");
  }
  return out;
}

std::string QuerySpec::ToString() const {
  std::string out;
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) {
      bool except = i - 1 < set_ops.size() &&
                    set_ops[i - 1] == SetOpKind::kDifference;
      out += except ? " EXCEPT " : " UNION ";
    }
    out += blocks[i].ToString();
  }
  return out;
}

}  // namespace ned
