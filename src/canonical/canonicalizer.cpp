#include "canonical/canonicalizer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "algebra/fingerprint.h"
#include "common/strings.h"

namespace ned {
namespace {

/// Rewrites an expression, mapping renamed attributes to their new
/// (unqualified) names. Non-ColumnRef structure is rebuilt recursively.
ExprPtr SubstituteAttrs(const ExprPtr& expr,
                        const std::map<Attribute, Attribute>& subst) {
  if (auto col = std::dynamic_pointer_cast<const ColumnRef>(expr)) {
    auto it = subst.find(col->attribute());
    if (it != subst.end()) return std::make_shared<ColumnRef>(it->second);
    return expr;
  }
  if (auto cmp = std::dynamic_pointer_cast<const Comparison>(expr)) {
    return std::make_shared<Comparison>(SubstituteAttrs(cmp->left(), subst),
                                        cmp->op(),
                                        SubstituteAttrs(cmp->right(), subst));
  }
  if (auto conj = std::dynamic_pointer_cast<const Conjunction>(expr)) {
    std::vector<ExprPtr> terms;
    for (const auto& t : conj->terms()) terms.push_back(SubstituteAttrs(t, subst));
    return std::make_shared<Conjunction>(std::move(terms));
  }
  if (auto disj = std::dynamic_pointer_cast<const Disjunction>(expr)) {
    std::vector<ExprPtr> terms;
    for (const auto& t : disj->terms()) terms.push_back(SubstituteAttrs(t, subst));
    return std::make_shared<Disjunction>(std::move(terms));
  }
  // Literal / Not fall through unchanged (Not's operand rarely holds columns
  // in our query class; extend as needed).
  return expr;
}

Attribute SubstituteAttr(const Attribute& attr,
                         const std::map<Attribute, Attribute>& subst) {
  auto it = subst.find(attr);
  return it == subst.end() ? attr : it->second;
}

/// Aliases referenced by an expression.
std::set<std::string> AliasesOf(const ExprPtr& expr) {
  std::vector<Attribute> attrs;
  expr->CollectAttributes(&attrs);
  std::set<std::string> aliases;
  for (const auto& a : attrs) {
    if (a.qualified()) aliases.insert(a.qualifier);
  }
  return aliases;
}

/// Incremental builder for a block's tree, tracking the current node, the
/// set of joined aliases, the cumulative renaming substitution, and the
/// current output attribute list.
struct TreeBuilder {
  std::unique_ptr<OperatorNode> node;
  std::set<std::string> aliases;
  std::map<Attribute, Attribute> subst;
  std::vector<Attribute> attrs;

  void ApplySelection(const ExprPtr& predicate) {
    node = OperatorNode::MakeSelect(std::move(node),
                                    SubstituteAttrs(predicate, subst));
  }
};

}  // namespace

Result<std::unique_ptr<OperatorNode>> CanonicalizeBlock(
    const QueryBlock& block, const Database& db,
    const CanonicalizeOptions& options) {
  if (block.tables.empty()) {
    return Status::InvalidArgument("query block has no tables");
  }

  // ---- alias bookkeeping ----------------------------------------------------
  std::vector<std::string> alias_order;  // block order
  std::map<std::string, std::string> table_of;
  for (const auto& t : block.tables) {
    std::string alias = t.alias.empty() ? t.table : t.alias;
    if (table_of.count(alias) > 0) {
      return Status::InvalidArgument("duplicate alias in FROM: " + alias);
    }
    table_of[alias] = t.table;
    alias_order.push_back(alias);
    NED_RETURN_NOT_OK(db.GetRelation(t.table).ok()
                          ? Status::OK()
                          : db.GetRelation(t.table).status());
  }

  // ---- join graph -----------------------------------------------------------
  for (const auto& j : block.joins) {
    if (!j.left.qualified() || !j.right.qualified() ||
        j.left.qualifier == j.right.qualifier) {
      return Status::InvalidArgument("join predicate must link two aliases: " +
                                     j.left.FullName() + " = " +
                                     j.right.FullName());
    }
    if (table_of.count(j.left.qualifier) == 0 ||
        table_of.count(j.right.qualifier) == 0) {
      return Status::InvalidArgument("join predicate references unknown alias");
    }
  }
  auto adjacent = [&](const std::string& a,
                      const std::string& b) -> bool {
    for (const auto& j : block.joins) {
      if ((j.left.qualifier == a && j.right.qualifier == b) ||
          (j.left.qualifier == b && j.right.qualifier == a)) {
        return true;
      }
    }
    return false;
  };
  auto adjacent_to_set = [&](const std::set<std::string>& set,
                             const std::string& a) -> bool {
    for (const auto& s : set) {
      if (adjacent(s, a)) return true;
    }
    return false;
  };

  // ---- selection classification ----------------------------------------------
  std::map<std::string, std::vector<ExprPtr>> per_alias_sel;
  std::vector<ExprPtr> multi_sel;  // placed once all their aliases are joined
  std::vector<ExprPtr> top_sel;    // naive placement (ablation mode)
  for (const auto& sel : block.selections) {
    if (!options.place_selections_at_frontier) {
      top_sel.push_back(sel);
      continue;
    }
    std::set<std::string> aliases = AliasesOf(sel);
    if (aliases.size() == 1) {
      per_alias_sel[*aliases.begin()].push_back(sel);
    } else {
      multi_sel.push_back(sel);
    }
  }

  // ---- breakpoint alias cover (aggregation only) -----------------------------
  std::set<std::string> vset;
  if (block.agg.has_value()) {
    std::set<std::string> needed;
    for (const auto& g : block.agg->group_by) {
      if (g.qualified()) needed.insert(g.qualifier);
    }
    for (const auto& call : block.agg->calls) {
      if (call.arg.qualified()) needed.insert(call.arg.qualifier);
    }
    if (!needed.empty()) {
      // Greedy Steiner cover: BFS over the join graph from the growing set to
      // the nearest uncovered needed alias, adding the connecting path.
      vset.insert(*needed.begin());
      while (true) {
        std::vector<std::string> missing;
        for (const auto& n : needed) {
          if (vset.count(n) == 0) missing.push_back(n);
        }
        if (missing.empty()) break;
        // Multi-source BFS.
        std::map<std::string, std::string> parent;
        std::deque<std::string> queue;
        for (const auto& s : vset) {
          parent[s] = "";
          queue.push_back(s);
        }
        std::string found;
        while (!queue.empty() && found.empty()) {
          std::string cur = queue.front();
          queue.pop_front();
          for (const auto& next : alias_order) {
            if (parent.count(next) > 0 || !adjacent(cur, next)) continue;
            parent[next] = cur;
            if (std::find(missing.begin(), missing.end(), next) !=
                missing.end()) {
              found = next;
              break;
            }
            queue.push_back(next);
          }
        }
        if (found.empty()) {
          // Disconnected: cover the alias anyway (cross product fallback).
          vset.insert(missing.front());
          continue;
        }
        for (std::string cur = found; !cur.empty(); cur = parent[cur]) {
          vset.insert(cur);
        }
      }
    }
  }

  // ---- leaf construction ------------------------------------------------------
  auto make_leaf = [&](const std::string& alias,
                       bool with_selections) -> std::unique_ptr<OperatorNode> {
    std::unique_ptr<OperatorNode> leaf =
        OperatorNode::MakeScan(alias, table_of.at(alias));
    if (!block.agg.has_value() || vset.count(alias) == 0) {
      // Every leaf outside V is itself a breakpoint (visibility frontier).
      leaf->is_breakpoint = true;
    }
    if (with_selections) {
      auto it = per_alias_sel.find(alias);
      if (it != per_alias_sel.end()) {
        for (const auto& sel : it->second) {
          leaf = OperatorNode::MakeSelect(std::move(leaf), sel);
        }
      }
    }
    return leaf;
  };

  // ---- join ordering ----------------------------------------------------------
  // V aliases first (bare scans; their selections stack above V), then the
  // rest (scans wrapped with their pushed-down selections).
  auto order_subset = [&](const std::set<std::string>& subset,
                          const std::set<std::string>& seed)
      -> std::vector<std::string> {
    std::vector<std::string> order;
    std::set<std::string> placed = seed;
    std::set<std::string> remaining = subset;
    while (!remaining.empty()) {
      std::string pick;
      for (const auto& a : alias_order) {
        if (remaining.count(a) == 0) continue;
        if (placed.empty() || adjacent_to_set(placed, a)) {
          pick = a;
          break;
        }
      }
      if (pick.empty()) {
        // Disconnected component: take the first remaining (cross product).
        for (const auto& a : alias_order) {
          if (remaining.count(a) > 0) {
            pick = a;
            break;
          }
        }
      }
      order.push_back(pick);
      placed.insert(pick);
      remaining.erase(pick);
    }
    return order;
  };

  TreeBuilder builder;
  auto join_alias = [&](const std::string& alias, bool leaf_selections) -> Status {
    std::unique_ptr<OperatorNode> leaf = make_leaf(alias, leaf_selections);
    NED_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(table_of.at(alias)));
    std::vector<Attribute> leaf_attrs;
    for (const auto& a : rel->schema().attributes()) {
      leaf_attrs.emplace_back(alias, a.name);
    }
    if (builder.node == nullptr) {
      builder.node = std::move(leaf);
      builder.attrs = std::move(leaf_attrs);
      builder.aliases.insert(alias);
      return Status::OK();
    }
    Renaming renaming;
    for (const auto& j : block.joins) {
      Attribute from_set, from_new;
      if (builder.aliases.count(j.left.qualifier) > 0 &&
          j.right.qualifier == alias) {
        from_set = j.left;
        from_new = j.right;
      } else if (builder.aliases.count(j.right.qualifier) > 0 &&
                 j.left.qualifier == alias) {
        from_set = j.right;
        from_new = j.left;
      } else {
        continue;
      }
      // The set-side attribute may itself have been renamed by an earlier
      // join; the renaming triple then references the current name.
      Attribute current = SubstituteAttr(from_set, builder.subst);
      renaming.Add(current, from_new, j.out_name);
      builder.subst[from_set] = Attribute::Unqualified(j.out_name);
      builder.subst[from_new] = Attribute::Unqualified(j.out_name);
      builder.subst[current] = Attribute::Unqualified(j.out_name);
    }
    // Update the attribute list: apply the renaming to both sides, merging
    // the renamed attributes.
    std::vector<Attribute> new_attrs;
    auto add_mapped = [&](const std::vector<Attribute>& source) {
      for (const auto& a : source) {
        Attribute mapped = renaming.Apply(a);
        if (std::find(new_attrs.begin(), new_attrs.end(), mapped) ==
            new_attrs.end()) {
          new_attrs.push_back(mapped);
        }
      }
    };
    add_mapped(builder.attrs);
    add_mapped(leaf_attrs);
    builder.node = OperatorNode::MakeJoin(std::move(builder.node),
                                          std::move(leaf), std::move(renaming));
    builder.attrs = std::move(new_attrs);
    builder.aliases.insert(alias);
    return Status::OK();
  };

  auto apply_ready_multi_selections = [&](std::vector<ExprPtr>* pending) {
    for (auto it = pending->begin(); it != pending->end();) {
      std::set<std::string> aliases = AliasesOf(*it);
      bool ready = true;
      for (const auto& a : aliases) {
        if (builder.aliases.count(a) == 0) {
          ready = false;
          break;
        }
      }
      if (ready) {
        builder.ApplySelection(*it);
        it = pending->erase(it);
      } else {
        ++it;
      }
    }
  };

  std::vector<ExprPtr> pending_multi = multi_sel;

  if (!vset.empty()) {
    for (const auto& alias : order_subset(vset, {})) {
      NED_RETURN_NOT_OK(join_alias(alias, /*leaf_selections=*/false));
    }
    // Mark the breakpoint view V.
    builder.node->is_breakpoint = true;
    // Selections over V's relations stack right above the frontier, in block
    // order; multi-alias selections inside V as well.
    for (const auto& alias : alias_order) {
      if (vset.count(alias) == 0) continue;
      auto it = per_alias_sel.find(alias);
      if (it == per_alias_sel.end()) continue;
      for (const auto& sel : it->second) builder.ApplySelection(sel);
    }
    apply_ready_multi_selections(&pending_multi);
  }

  std::set<std::string> rest;
  for (const auto& a : alias_order) {
    if (vset.count(a) == 0) rest.insert(a);
  }
  for (const auto& alias : order_subset(rest, builder.aliases)) {
    NED_RETURN_NOT_OK(join_alias(alias, /*leaf_selections=*/true));
    apply_ready_multi_selections(&pending_multi);
  }
  if (!pending_multi.empty()) {
    return Status::InvalidArgument(
        "selection references aliases that never joined");
  }
  for (const auto& sel : top_sel) builder.ApplySelection(sel);

  // ---- aggregation --------------------------------------------------------------
  std::vector<Attribute> output_attrs = builder.attrs;
  if (block.agg.has_value()) {
    std::vector<Attribute> group_by;
    for (const auto& g : block.agg->group_by) {
      group_by.push_back(SubstituteAttr(g, builder.subst));
    }
    std::vector<AggCall> calls;
    for (const auto& call : block.agg->calls) {
      calls.push_back(
          {call.fn, SubstituteAttr(call.arg, builder.subst), call.out_name});
    }
    output_attrs = group_by;
    for (const auto& call : calls) {
      output_attrs.push_back(Attribute::Unqualified(call.out_name));
    }
    builder.node = OperatorNode::MakeAggregate(std::move(builder.node),
                                               std::move(group_by),
                                               std::move(calls));
  }

  // ---- projection -----------------------------------------------------------------
  if (!block.projection.empty()) {
    std::vector<Attribute> projection;
    for (const auto& p : block.projection) {
      projection.push_back(SubstituteAttr(p, builder.subst));
    }
    if (projection != output_attrs) {
      builder.node =
          OperatorNode::MakeProject(std::move(builder.node), projection);
    }
  }
  return std::move(builder.node);
}

Result<QueryTree> Canonicalize(const QuerySpec& spec, const Database& db,
                               const CanonicalizeOptions& options) {
  if (spec.blocks.empty()) {
    return Status::InvalidArgument("query spec has no blocks");
  }

  // Output attribute names of one block (needed to build union renamings).
  auto block_output = [&](const QueryBlock& block)
      -> Result<std::vector<Attribute>> {
    // Recompute cheaply: a block's output is its projection (resolved), or
    // G+Agg, or the joined schema. We canonicalize into a throwaway tree to
    // read the exact output type.
    NED_ASSIGN_OR_RETURN(std::unique_ptr<OperatorNode> node,
                         CanonicalizeBlock(block, db, options));
    NED_ASSIGN_OR_RETURN(QueryTree tmp, QueryTree::Create(std::move(node), db));
    return tmp.target_type().attributes();
  };

  NED_ASSIGN_OR_RETURN(std::unique_ptr<OperatorNode> root,
                       CanonicalizeBlock(spec.blocks[0], db, options));
  if (spec.blocks.size() > 1) {
    NED_ASSIGN_OR_RETURN(std::vector<Attribute> left_attrs,
                         block_output(spec.blocks[0]));
    for (size_t b = 1; b < spec.blocks.size(); ++b) {
      NED_ASSIGN_OR_RETURN(std::unique_ptr<OperatorNode> right,
                           CanonicalizeBlock(spec.blocks[b], db, options));
      NED_ASSIGN_OR_RETURN(std::vector<Attribute> right_attrs,
                           block_output(spec.blocks[b]));
      if (right_attrs.size() != left_attrs.size()) {
        return Status::TypeError("union operands have different arity");
      }
      Renaming renaming;
      std::vector<Attribute> union_attrs;
      for (size_t k = 0; k < left_attrs.size(); ++k) {
        std::string name = k < spec.union_names.size() ? spec.union_names[k]
                                                       : left_attrs[k].name;
        renaming.Add(left_attrs[k], right_attrs[k], name);
        union_attrs.push_back(Attribute::Unqualified(name));
      }
      SetOpKind op = b - 1 < spec.set_ops.size() ? spec.set_ops[b - 1]
                                                  : SetOpKind::kUnion;
      root = op == SetOpKind::kUnion
                 ? OperatorNode::MakeUnion(std::move(root), std::move(right),
                                           std::move(renaming))
                 : OperatorNode::MakeDifference(std::move(root),
                                                std::move(right),
                                                std::move(renaming));
      left_attrs = std::move(union_attrs);
    }
  }
  return QueryTree::Create(std::move(root), db);
}

Result<std::string> CanonicalFingerprint(const QuerySpec& spec,
                                         const Database& db,
                                         const CanonicalizeOptions& options) {
  NED_ASSIGN_OR_RETURN(QueryTree tree, Canonicalize(spec, db, options));
  return SubtreeFingerprint(*tree.root());
}

}  // namespace ned
