/// \file query_spec.h
/// \brief Logical query description consumed by the canonicalizer.
///
/// A QuerySpec is the declarative content of a (union of) SPJA quer(ies):
/// which relations are read (with aliases), which equi-join predicates link
/// them (each carrying the renaming's fresh attribute name), the selection
/// predicates, an optional aggregation, and the projection. It is produced
/// either by the SQL binder or directly by API users, and turned into the
/// *canonical query tree* of Sec. 3.1 (step 2b) by Canonicalize().

#ifndef NED_CANONICAL_QUERY_SPEC_H_
#define NED_CANONICAL_QUERY_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "expr/expression.h"

namespace ned {

/// A FROM-list entry: stored table `table` read under `alias`.
struct TableRef {
  std::string alias;
  std::string table;
};

/// An equi-join predicate `left = right` whose renaming triple introduces
/// `out_name` (Def. 2.1). `left`/`right` are qualified attributes of two
/// distinct aliases.
struct JoinSpec {
  Attribute left;
  Attribute right;
  std::string out_name;
};

/// Aggregation part: GROUP BY attributes plus aggregate calls.
struct AggSpec {
  std::vector<Attribute> group_by;
  std::vector<AggCall> calls;
};

/// One SELECT block.
struct QueryBlock {
  std::vector<TableRef> tables;
  std::vector<JoinSpec> joins;
  /// Selection conjuncts (boolean expressions over qualified attributes).
  std::vector<ExprPtr> selections;
  std::optional<AggSpec> agg;
  /// Projection in target order. Attributes may be qualified (possibly
  /// subject to join renamings, which the canonicalizer resolves) or the
  /// unqualified outputs of renamings/aggregations. Empty means "all".
  std::vector<Attribute> projection;

  std::string ToString() const;
};

/// Set operation connecting adjacent blocks.
enum class SetOpKind { kUnion, kDifference };

/// A set-operation chain of blocks (left-folded). `set_ops[i]` connects
/// blocks[i] and blocks[i+1]; missing entries default to union.
/// `union_names`, when set, gives the output attribute names of the set
/// operations' renamings (one per projected column); otherwise the first
/// block's unqualified column names are used.
struct QuerySpec {
  std::vector<QueryBlock> blocks;
  std::vector<SetOpKind> set_ops;
  std::vector<std::string> union_names;

  std::string ToString() const;
};

}  // namespace ned

#endif  // NED_CANONICAL_QUERY_SPEC_H_
