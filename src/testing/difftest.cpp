#include "testing/difftest.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <utility>

#include "baseline/whynot_baseline.h"
#include "common/atomic_file.h"
#include "common/csv.h"
#include "common/strings.h"
#include "core/nedexplain.h"
#include "exec/evaluator.h"
#include "sql/binder.h"

namespace ned {
namespace {

using DetailedSet = std::set<std::pair<TupleId, const OperatorNode*>>;
using NodeSet = std::set<const OperatorNode*>;

std::string TupleName(TupleId id) {
  if (id == kInvalidTupleId) return "⊥";
  return StrCat("t", TupleIdAlias(id), ":", TupleIdRow(id));
}

std::string NodeName(const OperatorNode* n) { return n ? n->name : "<null>"; }

std::string FormatDetailed(const DetailedSet& s) {
  std::vector<std::string> parts;
  for (const auto& [id, node] : s) {
    parts.push_back("(" + TupleName(id) + ", " + NodeName(node) + ")");
  }
  return "{" + Join(parts, ", ") + "}";
}

std::string FormatNodes(const NodeSet& s) {
  std::vector<std::string> parts;
  for (const OperatorNode* n : s) parts.push_back(NodeName(n));
  std::sort(parts.begin(), parts.end());
  return "{" + Join(parts, ", ") + "}";
}

std::string FormatIds(const std::set<TupleId>& s) {
  std::vector<std::string> parts;
  for (TupleId id : s) parts.push_back(TupleName(id));
  return "{" + Join(parts, ", ") + "}";
}

/// Order-insensitive rendering of a c-tuple: the engine and the oracle may
/// emit unrenamed fields in different orders, which Def. 2.7 does not fix.
std::string CanonicalCTuple(const CTuple& tc) {
  std::vector<std::string> fields;
  for (const auto& [attr, cv] : tc.fields()) {
    fields.push_back(attr.FullName() + ":" + cv.ToString());
  }
  std::sort(fields.begin(), fields.end());
  std::vector<std::string> conds;
  for (const CPred& p : tc.cond()) conds.push_back(p.ToString());
  std::sort(conds.begin(), conds.end());
  std::string out = "(" + Join(fields, ", ") + ")";
  if (!conds.empty()) out += " where " + Join(conds, " AND ");
  return out;
}

DetailedSet ToDetailedSet(const std::vector<DetailedEntry>& v) {
  DetailedSet s;
  for (const DetailedEntry& e : v) s.emplace(e.dir_tuple, e.subquery);
  return s;
}

NodeSet ToNodeSet(const std::vector<const OperatorNode*>& v) {
  return NodeSet(v.begin(), v.end());
}

template <typename T>
std::set<TupleId> ToIdSet(const T& unordered) {
  return std::set<TupleId>(unordered.begin(), unordered.end());
}

void Mismatch(DiffOutcome* out, const std::string& kind, std::string detail) {
  out->mismatches.push_back({kind, std::move(detail)});
}

/// Compares one answer triple; `where` tags the comparison context
/// (e.g. "ctuple 0, ET on").
void CompareAnswer(const OracleAnswer& oracle, const WhyNotAnswer& engine,
                   const std::string& where, bool inject_divergence,
                   DiffOutcome* out) {
  DetailedSet engine_detailed = ToDetailedSet(engine.detailed);
  NodeSet engine_condensed = ToNodeSet(engine.condensed);
  NodeSet engine_secondary = ToNodeSet(engine.secondary);
  if (inject_divergence && !engine_condensed.empty()) {
    engine_condensed.erase(engine_condensed.begin());
  }
  if (engine_detailed != oracle.detailed) {
    Mismatch(out, "detailed",
             StrCat(where, ": engine ", FormatDetailed(engine_detailed),
                    " vs oracle ", FormatDetailed(oracle.detailed)));
  }
  if (engine_condensed != oracle.condensed) {
    Mismatch(out, "condensed",
             StrCat(where, ": engine ", FormatNodes(engine_condensed),
                    " vs oracle ", FormatNodes(oracle.condensed)));
  }
  if (engine_secondary != oracle.secondary) {
    Mismatch(out, "secondary",
             StrCat(where, ": engine ", FormatNodes(engine_secondary),
                    " vs oracle ", FormatNodes(oracle.secondary)));
  }
}

/// Runs the engine once; returns the status (error, or OK with `*result`
/// filled).
Status RunEngine(const QueryTree& tree, const Database& db,
                 const WhyNotQuestion& question, bool early_termination,
                 NedExplainResult* result) {
  NedExplainOptions options;
  options.enable_early_termination = early_termination;
  options.compute_secondary = true;
  auto engine = NedExplainEngine::Create(&tree, &db, options);
  if (!engine.ok()) return engine.status();
  auto res = engine->Explain(question);
  if (!res.ok()) return res.status();
  *result = std::move(*res);
  return Status::OK();
}

void CompareBaselines(const QueryTree& tree, const Database& db,
                      const WhyNotQuestion& question, DiffOutcome* out) {
  WhyNotBaselineResult results[2];
  for (int i = 0; i < 2; ++i) {
    auto traversal =
        i == 0 ? BaselineTraversal::kBottomUp : BaselineTraversal::kTopDown;
    auto baseline = WhyNotBaseline::Create(&tree, &db, traversal);
    if (!baseline.ok()) {
      Mismatch(out, "baseline",
               StrCat("baseline Create failed: ", baseline.status().ToString()));
      return;
    }
    auto res = baseline->Explain(question);
    if (!res.ok()) {
      Mismatch(out, "baseline",
               StrCat("baseline Explain failed: ", res.status().ToString()));
      return;
    }
    results[i] = std::move(*res);
  }
  if (results[0].supported != results[1].supported) {
    Mismatch(out, "baseline",
             StrCat("support disagrees: bottom-up ", results[0].supported,
                    " vs top-down ", results[1].supported));
    return;
  }
  if (!results[0].supported) return;  // "n.a." on both sides: nothing to diff
  if (ToNodeSet(results[0].answer) != ToNodeSet(results[1].answer)) {
    Mismatch(out, "baseline",
             StrCat("frontier picky disagrees: bottom-up ",
                    FormatNodes(ToNodeSet(results[0].answer)), " vs top-down ",
                    FormatNodes(ToNodeSet(results[1].answer))));
  }
  if (results[0].per_ctuple.size() == results[1].per_ctuple.size()) {
    for (size_t i = 0; i < results[0].per_ctuple.size(); ++i) {
      const auto& bu = results[0].per_ctuple[i];
      const auto& td = results[1].per_ctuple[i];
      if (bu.frontier_picky != td.frontier_picky ||
          bu.answer_deemed_present != td.answer_deemed_present) {
        Mismatch(out, "baseline",
                 StrCat("ctuple ", i, ": bottom-up (",
                        NodeName(bu.frontier_picky), ", present=",
                        bu.answer_deemed_present, ") vs top-down (",
                        NodeName(td.frontier_picky), ", present=",
                        td.answer_deemed_present, ")"));
      }
    }
  }
}

/// Sorted multiset of a node output's rows, as value strings.
Result<std::vector<std::string>> RootRows(const QueryTree& tree,
                                          const Database& db) {
  NED_ASSIGN_OR_RETURN(QueryInput input, QueryInput::Build(tree, db));
  Evaluator evaluator(&tree, &input);
  NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* out,
                       evaluator.EvalAll());
  std::vector<std::string> rows;
  for (const TraceTuple& t : *out) {
    std::vector<std::string> vals;
    for (const Value& v : t.values.values()) vals.push_back(v.ToString());
    rows.push_back(Join(vals, "|"));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

void CheckSqlRoundTrip(const GenWorkload& w, const Database& db,
                       const QueryTree& tree, DiffOutcome* out) {
  std::string sql = SpecToSql(w.spec);
  if (sql.empty()) {
    Mismatch(out, "sql-roundtrip", "generated spec is not printable as SQL");
    return;
  }
  auto tree2 = CompileSql(sql, db);
  if (!tree2.ok()) {
    Mismatch(out, "sql-roundtrip",
             StrCat("printed SQL fails to compile: ", tree2.status().ToString(),
                    "\n  sql: ", sql));
    return;
  }
  auto rows1 = RootRows(tree, db);
  auto rows2 = RootRows(*tree2, db);
  if (!rows1.ok() || !rows2.ok()) {
    // Evaluation errors (e.g. a planted type clash) must at least agree.
    StatusCode c1 = rows1.ok() ? StatusCode::kOk : rows1.status().code();
    StatusCode c2 = rows2.ok() ? StatusCode::kOk : rows2.status().code();
    if (c1 != c2) {
      Mismatch(out, "sql-roundtrip",
               StrCat("evaluation status disagrees: spec ",
                      rows1.ok() ? "OK" : rows1.status().ToString(),
                      " vs sql ",
                      rows2.ok() ? "OK" : rows2.status().ToString()));
    }
    return;
  }
  if (*rows1 != *rows2) {
    Mismatch(out, "sql-roundtrip",
             StrCat("root result differs (", rows1->size(), " vs ",
                    rows2->size(), " rows)\n  sql: ", sql));
  }
}

}  // namespace

bool DiffOutcome::HasKind(const std::string& kind) const {
  for (const DiffMismatch& m : mismatches) {
    if (m.kind == kind) return true;
  }
  return false;
}

std::string DiffOutcome::Summary() const {
  std::string out = StrCat("seed ", seed, " (", scenario, "): ");
  if (mismatches.empty()) {
    out += ran ? "ok" : StrCat("skipped (", note, ")");
    return out;
  }
  out += StrCat(mismatches.size(), " mismatch(es)\n");
  for (const DiffMismatch& m : mismatches) {
    out += StrCat("  [", m.kind, "] ", m.detail, "\n");
  }
  out += "  repro: " + ReproCommand(seed);
  return out;
}

DiffOutcome RunDiff(const QueryTree& tree, const Database& db,
                    const WhyNotQuestion& question, const DiffOptions& opts) {
  DiffOutcome out;

  auto oracle = OracleExplain(tree, db, question);
  NedExplainResult engine;
  Status engine_status = RunEngine(tree, db, question,
                                   /*early_termination=*/false, &engine);

  // Error agreement: both sides must accept or reject with the same code.
  if (!oracle.ok() || !engine_status.ok()) {
    StatusCode oc = oracle.ok() ? StatusCode::kOk : oracle.status().code();
    StatusCode ec = engine_status.ok() ? StatusCode::kOk : engine_status.code();
    if (oc != ec) {
      Mismatch(&out, "status",
               StrCat("oracle ",
                      oracle.ok() ? "OK" : oracle.status().ToString(),
                      " vs engine ",
                      engine_status.ok() ? "OK" : engine_status.ToString()));
    } else {
      out.note = StrCat("both rejected: ", engine_status.ToString());
    }
    return out;
  }
  out.ran = true;

  // Unrenamed question (Def. 2.7).
  const auto& engine_unrenamed = engine.unrenamed.ctuples();
  if (engine_unrenamed.size() != oracle->unrenamed.size()) {
    Mismatch(&out, "unrenamed",
             StrCat("count: engine ", engine_unrenamed.size(), " vs oracle ",
                    oracle->unrenamed.size()));
  } else {
    for (size_t i = 0; i < engine_unrenamed.size(); ++i) {
      std::string e = CanonicalCTuple(engine_unrenamed[i]);
      std::string o = CanonicalCTuple(oracle->unrenamed[i]);
      if (e != o) {
        Mismatch(&out, "unrenamed",
                 StrCat("ctuple ", i, ": engine ", e, " vs oracle ", o));
      }
    }
  }

  // Per-c-tuple compatible sets, survivors and answers (ET off = full run).
  if (engine.per_ctuple.size() != oracle->per_ctuple.size()) {
    Mismatch(&out, "status",
             StrCat("per-ctuple count: engine ", engine.per_ctuple.size(),
                    " vs oracle ", oracle->per_ctuple.size()));
    return out;
  }
  for (size_t i = 0; i < engine.per_ctuple.size(); ++i) {
    const CTupleExplainResult& e = engine.per_ctuple[i];
    const OracleCTupleResult& o = oracle->per_ctuple[i];
    std::string where = StrCat("ctuple ", i, " (ET off)");
    if (ToIdSet(e.compat.dir) != o.dir) {
      Mismatch(&out, "dir",
               StrCat(where, ": engine ", FormatIds(ToIdSet(e.compat.dir)),
                      " vs oracle ", FormatIds(o.dir)));
    }
    if (ToIdSet(e.compat.indir) != o.indir) {
      Mismatch(&out, "indir",
               StrCat(where, ": engine ", FormatIds(ToIdSet(e.compat.indir)),
                      " vs oracle ", FormatIds(o.indir)));
    }
    if (e.survivors_at_root != o.survivors_at_root) {
      Mismatch(&out, "survivors",
               StrCat(where, ": engine ", e.survivors_at_root, " vs oracle ",
                      o.survivors_at_root));
    }
    CompareAnswer(o.answer, e.answer, where, opts.inject_divergence, &out);
  }
  CompareAnswer(oracle->answer, engine.answer, "question (ET off)",
                opts.inject_divergence, &out);

  // Early termination must not change any answer granularity (Alg. 2).
  if (opts.check_early_termination) {
    NedExplainResult engine_et;
    Status et_status = RunEngine(tree, db, question,
                                 /*early_termination=*/true, &engine_et);
    if (!et_status.ok()) {
      Mismatch(&out, "status",
               StrCat("ET-on run failed: ", et_status.ToString()));
    } else if (engine_et.per_ctuple.size() != oracle->per_ctuple.size()) {
      Mismatch(&out, "status",
               StrCat("ET-on per-ctuple count: ", engine_et.per_ctuple.size(),
                      " vs oracle ", oracle->per_ctuple.size()));
    } else {
      for (size_t i = 0; i < engine_et.per_ctuple.size(); ++i) {
        CompareAnswer(oracle->per_ctuple[i].answer,
                      engine_et.per_ctuple[i].answer,
                      StrCat("ctuple ", i, " (ET on)"), opts.inject_divergence,
                      &out);
      }
      CompareAnswer(oracle->answer, engine_et.answer, "question (ET on)",
                    opts.inject_divergence, &out);
    }
  }

  // Baseline bottom-up vs top-down ([2] claims their equivalence).
  if (opts.check_baseline) CompareBaselines(tree, db, question, &out);

  return out;
}

DiffOutcome RunDiffOnWorkload(const GenWorkload& w, const DiffOptions& opts) {
  DiffOutcome out;
  out.seed = w.seed;
  out.scenario = w.scenario;
  auto compiled = CompileWorkload(w);
  if (!compiled.ok()) {
    Mismatch(&out, "compile",
             StrCat("workload does not compile: ",
                    compiled.status().ToString()));
    return out;
  }
  DiffOutcome diff = RunDiff(*compiled->tree, *compiled->db, w.question, opts);
  out.ran = diff.ran;
  out.note = diff.note;
  out.mismatches = std::move(diff.mismatches);
  if (opts.check_sql_roundtrip) {
    CheckSqlRoundTrip(w, *compiled->db, *compiled->tree, &out);
  }
  return out;
}

DiffOutcome RunDiffSeed(uint64_t seed, const DiffOptions& opts) {
  return RunDiffOnWorkload(MakeDiffWorkload(seed), opts);
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

namespace {

Relation RemoveRowRange(const Relation& r, size_t start, size_t count) {
  Relation out(r.name(), r.schema());
  for (size_t i = 0; i < r.size(); ++i) {
    if (i >= start && i < start + count) continue;
    out.AddRow(r.row(i).values());
  }
  return out;
}

/// Drops question condition predicates mentioning variables that no field
/// binds anymore.
void PruneDanglingConds(CTuple* tc) {
  std::set<std::string> bound;
  for (const auto& [attr, cv] : tc->fields()) {
    if (cv.is_var) bound.insert(cv.var);
  }
  CTuple pruned;
  for (const auto& [attr, cv] : tc->fields()) pruned.AddField(attr, cv);
  for (const CPred& p : tc->cond()) {
    if (!bound.count(p.lhs_var)) continue;
    if (p.rhs_is_var && !bound.count(p.rhs_var)) continue;
    pruned.Where(p);
  }
  *tc = std::move(pruned);
}

CTuple WithoutField(const CTuple& tc, size_t field_index) {
  CTuple out;
  for (size_t i = 0; i < tc.fields().size(); ++i) {
    if (i == field_index) continue;
    out.AddField(tc.fields()[i].first, tc.fields()[i].second);
  }
  for (const CPred& p : tc.cond()) out.Where(p);
  PruneDanglingConds(&out);
  return out;
}

WhyNotQuestion RebuildQuestion(const std::vector<CTuple>& ctuples) {
  WhyNotQuestion q;
  for (const CTuple& tc : ctuples) q.AddCTuple(tc);
  return q;
}

}  // namespace

ShrinkResult ShrinkWorkload(const GenWorkload& w, const DiffOptions& opts) {
  ShrinkResult result;
  result.workload = w;
  result.outcome = RunDiffOnWorkload(w, opts);
  if (result.outcome.ok()) return result;  // nothing to shrink

  std::set<std::string> original_kinds;
  for (const DiffMismatch& m : result.outcome.mismatches) {
    original_kinds.insert(m.kind);
  }
  // A candidate counts as "still failing" only when it reproduces one of the
  // original mismatch kinds; otherwise shrinking could drift onto an
  // unrelated artifact of the mutation itself.
  auto still_fails = [&](const GenWorkload& cand, DiffOutcome* outcome) {
    ++result.tried;
    *outcome = RunDiffOnWorkload(cand, opts);
    for (const DiffMismatch& m : outcome->mismatches) {
      if (original_kinds.count(m.kind)) return true;
    }
    return false;
  };
  auto accept = [&](GenWorkload cand, DiffOutcome outcome) {
    result.workload = std::move(cand);
    result.outcome = std::move(outcome);
    ++result.accepted;
  };

  const size_t kMaxAttempts = 800;
  bool progress = true;
  while (progress && result.tried < kMaxAttempts) {
    progress = false;
    GenWorkload& cur = result.workload;

    // 1. Row chunks, largest first (ddmin-style halving per relation).
    for (size_t ri = 0; ri < cur.relations.size(); ++ri) {
      for (size_t chunk = std::max<size_t>(cur.relations[ri].size() / 2, 1);
           ; chunk /= 2) {
        size_t start = 0;
        while (start < result.workload.relations[ri].size() &&
               result.tried < kMaxAttempts) {
          GenWorkload cand = result.workload;
          cand.relations[ri] = RemoveRowRange(cand.relations[ri], start, chunk);
          DiffOutcome outcome;
          if (still_fails(cand, &outcome)) {
            accept(std::move(cand), std::move(outcome));
            progress = true;
          } else {
            start += chunk;
          }
        }
        if (chunk <= 1) break;
      }
    }

    // 2. Selection conjuncts.
    for (size_t bi = 0; bi < result.workload.spec.blocks.size(); ++bi) {
      size_t si = 0;
      while (si < result.workload.spec.blocks[bi].selections.size() &&
             result.tried < kMaxAttempts) {
        GenWorkload cand = result.workload;
        auto& sels = cand.spec.blocks[bi].selections;
        sels.erase(sels.begin() + static_cast<ptrdiff_t>(si));
        DiffOutcome outcome;
        if (still_fails(cand, &outcome)) {
          accept(std::move(cand), std::move(outcome));
          progress = true;
        } else {
          ++si;
        }
      }
    }

    // 3. Trailing set-operation blocks.
    while (result.workload.spec.blocks.size() > 1 &&
           result.tried < kMaxAttempts) {
      GenWorkload cand = result.workload;
      cand.spec.blocks.pop_back();
      if (!cand.spec.set_ops.empty()) cand.spec.set_ops.pop_back();
      DiffOutcome outcome;
      if (!still_fails(cand, &outcome)) break;
      accept(std::move(cand), std::move(outcome));
      progress = true;
    }

    // 4. Question: whole c-tuples, then fields, then condition predicates.
    {
      std::vector<CTuple> ctuples = result.workload.question.ctuples();
      size_t ci = 0;
      while (ctuples.size() > 1 && ci < ctuples.size() &&
             result.tried < kMaxAttempts) {
        std::vector<CTuple> reduced = ctuples;
        reduced.erase(reduced.begin() + static_cast<ptrdiff_t>(ci));
        GenWorkload cand = result.workload;
        cand.question = RebuildQuestion(reduced);
        DiffOutcome outcome;
        if (still_fails(cand, &outcome)) {
          accept(std::move(cand), std::move(outcome));
          ctuples = std::move(reduced);
          progress = true;
        } else {
          ++ci;
        }
      }
      for (size_t c = 0; c < ctuples.size(); ++c) {
        size_t fi = 0;
        while (ctuples[c].fields().size() > 1 &&
               fi < ctuples[c].fields().size() &&
               result.tried < kMaxAttempts) {
          std::vector<CTuple> reduced = ctuples;
          reduced[c] = WithoutField(ctuples[c], fi);
          GenWorkload cand = result.workload;
          cand.question = RebuildQuestion(reduced);
          DiffOutcome outcome;
          if (still_fails(cand, &outcome)) {
            accept(std::move(cand), std::move(outcome));
            ctuples = std::move(reduced);
            progress = true;
          } else {
            ++fi;
          }
        }
        size_t pi = 0;
        while (pi < ctuples[c].cond().size() && result.tried < kMaxAttempts) {
          std::vector<CTuple> reduced = ctuples;
          CTuple rebuilt;
          for (const auto& [attr, cv] : ctuples[c].fields()) {
            rebuilt.AddField(attr, cv);
          }
          for (size_t p = 0; p < ctuples[c].cond().size(); ++p) {
            if (p != pi) rebuilt.Where(ctuples[c].cond()[p]);
          }
          reduced[c] = std::move(rebuilt);
          GenWorkload cand = result.workload;
          cand.question = RebuildQuestion(reduced);
          DiffOutcome outcome;
          if (still_fails(cand, &outcome)) {
            accept(std::move(cand), std::move(outcome));
            ctuples = std::move(reduced);
            progress = true;
          } else {
            ++pi;
          }
        }
      }
    }
  }

  result.workload.scenario = w.scenario + " (shrunk)";
  result.outcome.scenario = result.workload.scenario;
  return result;
}

// ---------------------------------------------------------------------------
// Repro serialization
// ---------------------------------------------------------------------------

namespace {

std::string ValueCode(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "Value::Null()";
    case ValueType::kInt:
      return StrCat("Value::Int(", v.as_int(), ")");
    case ValueType::kDouble:
      return StrCat("Value::Real(", v.as_double(), ")");
    case ValueType::kString:
      return StrCat("Value::Str(\"", v.as_string(), "\")");
  }
  return "Value::Null()";
}

const char* CompareOpCode(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "CompareOp::kEq";
    case CompareOp::kNe: return "CompareOp::kNe";
    case CompareOp::kLt: return "CompareOp::kLt";
    case CompareOp::kLe: return "CompareOp::kLe";
    case CompareOp::kGt: return "CompareOp::kGt";
    case CompareOp::kGe: return "CompareOp::kGe";
  }
  return "CompareOp::kEq";
}

std::string CsvCell(const Value& v) {
  return v.type() == ValueType::kNull ? "" : v.ToString();
}

}  // namespace

std::string ReproCommand(uint64_t seed) {
  return StrCat("build/tools/ned_difftest --seeds ", seed, "..", seed,
                " --shrink");
}

std::string ReproGTestCase(const GenWorkload& w) {
  std::string sql = SpecToSql(w.spec);
  std::string out = StrCat(
      "// Differential repro for seed ", w.seed, " (", w.scenario, ").\n",
      "// Generated by the ned_difftest shrinker; self-contained.\n",
      "TEST(DiffRepro, Seed", w.seed, ") {\n", "  Database db;\n");
  for (const Relation& r : w.relations) {
    out += "  {\n";
    std::vector<std::string> attrs;
    for (const Attribute& a : r.schema().attributes()) {
      attrs.push_back(StrCat("{\"", a.qualifier, "\", \"", a.name, "\"}"));
    }
    out += StrCat("    Relation r(\"", r.name(), "\", Schema({",
                  Join(attrs, ", "), "}));\n");
    for (size_t i = 0; i < r.size(); ++i) {
      std::vector<std::string> vals;
      for (const Value& v : r.row(i).values()) vals.push_back(ValueCode(v));
      out += StrCat("    r.AddRow({", Join(vals, ", "), "});\n");
    }
    out += "    ASSERT_TRUE(db.AddRelation(std::move(r)).ok());\n  }\n";
  }
  out += StrCat("  auto tree = CompileSql(\"", sql, "\", db);\n",
                "  ASSERT_TRUE(tree.ok()) << tree.status().ToString();\n",
                "  WhyNotQuestion q;\n");
  for (size_t c = 0; c < w.question.ctuples().size(); ++c) {
    const CTuple& tc = w.question.ctuples()[c];
    std::string var = StrCat("tc", c);
    out += StrCat("  CTuple ", var, ";\n");
    for (const auto& [attr, cv] : tc.fields()) {
      if (cv.is_var) {
        out += StrCat("  ", var, ".AddVar(\"", attr.FullName(), "\", \"",
                      cv.var, "\");\n");
      } else {
        out += StrCat("  ", var, ".Add(\"", attr.FullName(), "\", ",
                      ValueCode(cv.constant), ");\n");
      }
    }
    for (const CPred& p : tc.cond()) {
      if (p.rhs_is_var) {
        out += StrCat("  ", var, ".Where(CPred::VsVar(\"", p.lhs_var, "\", ",
                      CompareOpCode(p.op), ", \"", p.rhs_var, "\"));\n");
      } else {
        out += StrCat("  ", var, ".Where(\"", p.lhs_var, "\", ",
                      CompareOpCode(p.op), ", ", ValueCode(p.rhs_const),
                      ");\n");
      }
    }
    out += StrCat("  q.AddCTuple(", var, ");\n");
  }
  out += StrCat("  DiffOutcome outcome = RunDiff(*tree, db, q);\n",
                "  EXPECT_TRUE(outcome.ok()) << outcome.Summary();\n", "}\n");
  return out;
}

Status WriteRepro(const GenWorkload& w, const DiffOutcome& outcome,
                  const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status(StatusCode::kInternal,
                  StrCat("cannot create ", dir, ": ", ec.message()));
  }
  std::string stem = StrCat(dir, "/seed", w.seed);
  for (const Relation& r : w.relations) {
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> header;
    for (const Attribute& a : r.schema().attributes()) header.push_back(a.name);
    rows.push_back(std::move(header));
    for (size_t i = 0; i < r.size(); ++i) {
      std::vector<std::string> cells;
      for (const Value& v : r.row(i).values()) cells.push_back(CsvCell(v));
      rows.push_back(std::move(cells));
    }
    // Atomic writes: a crash (or ^C) mid-repro must never leave a torn CSV
    // that a later "repro from disk" run silently loads.
    NED_RETURN_NOT_OK(
        AtomicWriteFile(StrCat(stem, "_", r.name(), ".csv"), WriteCsv(rows)));
  }
  std::string sql_file = StrCat("-- seed ", w.seed, " (", w.scenario, ")\n",
                                "-- why-not: ", w.question.ToString(), "\n");
  for (const DiffMismatch& m : outcome.mismatches) {
    std::string one_line = m.detail;
    std::replace(one_line.begin(), one_line.end(), '\n', ' ');
    sql_file += StrCat("-- mismatch [", m.kind, "]: ", one_line, "\n");
  }
  std::string sql = SpecToSql(w.spec);
  sql_file += (sql.empty() ? "-- <spec not printable as SQL>" : sql) + "\n";
  NED_RETURN_NOT_OK(AtomicWriteFile(stem + ".sql", sql_file));
  return AtomicWriteFile(stem + "_test.cc", ReproGTestCase(w));
}

}  // namespace ned
