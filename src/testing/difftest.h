/// \file difftest.h
/// \brief Differential driver: NedExplain engine vs. brute-force oracle.
///
/// For a seeded workload, runs both sides and compares every observable:
/// the unrenamed question, Dir/InDir, root survivors, and the detailed,
/// condensed and secondary answers -- with early termination off for full
/// equality, and again with early termination on (the answers must be
/// identical; Alg. 2 only skips work that cannot change them). Where the
/// Why-Not baseline is defined it additionally checks the bottom-up and
/// top-down traversals agree, and the generator's printed SQL round-trips
/// through the lexer/parser/binder to an equivalent query.
///
/// Failing workloads are greedily shrunk (rows, selections, question fields,
/// trailing set-operation blocks) to a small repro, serialised as CSV + SQL
/// + a ready-to-paste gtest case.

#ifndef NED_TESTING_DIFFTEST_H_
#define NED_TESTING_DIFFTEST_H_

#include <string>
#include <vector>

#include "testing/oracle.h"
#include "testing/workload.h"

namespace ned {

struct DiffOptions {
  /// Also run the engine with early termination enabled and require the
  /// same answers (Alg. 2 must be answer-preserving).
  bool check_early_termination = true;
  /// Compare the Why-Not baseline's bottom-up vs. top-down traversals where
  /// the baseline is defined (no aggregation/union).
  bool check_baseline = true;
  /// Round-trip SpecToSql() output through CompileSql and require the same
  /// root result.
  bool check_sql_roundtrip = true;
  /// Testing-the-tester: pretend the engine missed one condensed subquery,
  /// so harness and shrinker demonstrably catch an injected divergence.
  bool inject_divergence = false;
};

/// One observed divergence. `kind` is stable ("detailed", "condensed",
/// "secondary", "dir", "indir", "survivors", "unrenamed", "status",
/// "baseline", "sql-roundtrip", "compile"); the shrinker uses it to keep a
/// candidate only when it reproduces an original mismatch kind.
struct DiffMismatch {
  std::string kind;
  std::string detail;
};

struct DiffOutcome {
  uint64_t seed = 0;
  std::string scenario;
  /// True when both sides ran to a comparable result (possibly both
  /// failing with the same status code, recorded in `note`).
  bool ran = false;
  std::string note;
  std::vector<DiffMismatch> mismatches;

  bool ok() const { return mismatches.empty(); }
  bool HasKind(const std::string& kind) const;
  /// Multi-line report: every mismatch plus the repro command.
  std::string Summary() const;
};

/// Core comparison over an already-compiled (tree, db, question) triple.
DiffOutcome RunDiff(const QueryTree& tree, const Database& db,
                    const WhyNotQuestion& question,
                    const DiffOptions& opts = {});

/// Compiles `w` and runs the full comparison including the SQL round-trip.
DiffOutcome RunDiffOnWorkload(const GenWorkload& w,
                              const DiffOptions& opts = {});

/// Generates the workload for `seed` and runs the full comparison.
DiffOutcome RunDiffSeed(uint64_t seed, const DiffOptions& opts = {});

struct ShrinkResult {
  GenWorkload workload;  ///< the minimized failing workload
  DiffOutcome outcome;   ///< outcome on `workload`
  size_t accepted = 0;   ///< reductions that kept the failure
  size_t tried = 0;      ///< candidate reductions evaluated
};

/// Greedily minimizes a failing workload: drops row chunks (ddmin-style
/// halving), selection conjuncts, question c-tuples/fields/condition
/// predicates and trailing set-operation blocks, keeping a candidate only
/// when it still exhibits one of the original mismatch kinds. Returns `w`
/// unchanged when `w` does not fail.
ShrinkResult ShrinkWorkload(const GenWorkload& w, const DiffOptions& opts = {});

/// "build/tools/ned_difftest --seeds N..N --shrink" -- how to reproduce.
std::string ReproCommand(uint64_t seed);

/// A self-contained, ready-to-paste gtest case reproducing `w`: builds the
/// instance in code, compiles the printed SQL, and re-runs RunDiff.
std::string ReproGTestCase(const GenWorkload& w);

/// Writes `<dir>/seed<N>_<relation>.csv` per relation, `<dir>/seed<N>.sql`
/// (query + question + mismatch summary as comments) and
/// `<dir>/seed<N>_test.cc` (the gtest case). Creates `dir` if needed.
Status WriteRepro(const GenWorkload& w, const DiffOutcome& outcome,
                  const std::string& dir);

}  // namespace ned

#endif  // NED_TESTING_DIFFTEST_H_
