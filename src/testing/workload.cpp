#include "testing/workload.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "expr/expression.h"

namespace ned {
namespace {

// ---------------------------------------------------------------------------
// Instance synthesis
// ---------------------------------------------------------------------------

/// Returns Int in [0, domain], or NULL with probability `null_prob`.
Value MaybeNullInt(Rng& rng, int64_t domain, double null_prob) {
  if (null_prob > 0 && rng.Chance(null_prob)) return Value::Null();
  return Value::Int(rng.UniformInt(0, domain));
}

Value RandomStr(Rng& rng, double null_prob) {
  if (null_prob > 0 && rng.Chance(null_prob)) return Value::Null();
  static const std::vector<std::string> kStrings = {"a", "b", "c", "d", "e"};
  return Value::Str(rng.Pick(kStrings));
}

/// Shared knobs for one workload's instance.
struct GenParams {
  int64_t rows = 8;
  int64_t domain = 4;     ///< join-key / value domain [0, domain]
  double null_prob = 0;   ///< per-cell NULL probability on key/value columns
};

GenParams DrawParams(Rng& rng) {
  GenParams p;
  p.rows = rng.UniformInt(3, 14);
  p.domain = rng.UniformInt(2, 6);
  if (rng.Chance(0.35)) p.null_prob = 0.15;  // NULL-bearing instances
  return p;
}

CompareOp PickCmp(Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0: return CompareOp::kGt;
    case 1: return CompareOp::kLe;
    case 2: return CompareOp::kEq;
    default: return CompareOp::kNe;
  }
}

// ---------------------------------------------------------------------------
// Question synthesis
// ---------------------------------------------------------------------------

/// A candidate question field: an attribute of the query's target type plus
/// how to draw constants for it.
struct QField {
  Attribute attr;
  bool is_string = false;
  int64_t domain = 4;
};

/// Builds a 1-2 c-tuple question over `fields`, mixing constants (sometimes
/// deliberately out of domain, so the data is genuinely missing), variables
/// with HAVING-style conditions, and occasional variable-variable conditions.
WhyNotQuestion MakeQuestion(Rng& rng, const std::vector<QField>& fields) {
  int n_ctuples = rng.Chance(0.25) ? 2 : 1;
  WhyNotQuestion q;
  for (int c = 0; c < n_ctuples; ++c) {
    CTuple tc;
    std::vector<std::string> vars;
    int var_counter = 0;
    for (const QField& f : fields) {
      // Keep most fields, always keeping at least the first.
      if (!tc.fields().empty() && rng.Chance(0.35)) continue;
      if (f.is_string) {
        tc.AddField(f.attr, CValue::Const(RandomStr(rng, 0)));
        continue;
      }
      if (rng.Chance(0.35)) {
        std::string var = "x" + std::to_string(var_counter++);
        tc.AddField(f.attr, CValue::Var(var));
        vars.push_back(var);
        tc.Where(var, PickCmp(rng),
                 Value::Int(rng.UniformInt(0, f.domain + 1)));
      } else {
        // Out-of-domain constants make the question's data certainly absent.
        int64_t hi = rng.Chance(0.2) ? f.domain + 5 : f.domain;
        tc.AddField(f.attr, CValue::Const(Value::Int(rng.UniformInt(0, hi))));
      }
    }
    if (vars.size() >= 2 && rng.Chance(0.3)) {
      tc.Where(CPred::VsVar(vars[0], PickCmp(rng), vars[1]));
    }
    q.AddCTuple(std::move(tc));
  }
  return q;
}

// ---------------------------------------------------------------------------
// Shapes
// ---------------------------------------------------------------------------

/// Chain: T0 -(k1)- T1 -(k2)- ... with selections on v; T0 also carries a
/// string column s.
void MakeChain(Rng& rng, const GenParams& p, int n_relations, GenWorkload* w) {
  QueryBlock block;
  for (int i = 0; i < n_relations; ++i) {
    std::string name = "T" + std::to_string(i);
    std::vector<Attribute> attrs = {{name, "id"},
                                    {name, "k" + std::to_string(i)},
                                    {name, "k" + std::to_string(i + 1)},
                                    {name, "v"}};
    if (i == 0) attrs.push_back({name, "s"});
    Relation rel(name, Schema(attrs));
    for (int64_t r = 0; r < p.rows; ++r) {
      std::vector<Value> row = {Value::Int(r),
                                MaybeNullInt(rng, p.domain, p.null_prob),
                                MaybeNullInt(rng, p.domain, p.null_prob),
                                MaybeNullInt(rng, 5, p.null_prob)};
      if (i == 0) row.push_back(RandomStr(rng, p.null_prob));
      rel.AddRow(std::move(row));
    }
    w->relations.push_back(std::move(rel));
    block.tables.push_back({name, name});
    if (i > 0) {
      std::string prev = "T" + std::to_string(i - 1);
      std::string key = "k" + std::to_string(i);
      block.joins.push_back(
          {Attribute(prev, key), Attribute(name, key), key + "j"});
    }
    if (rng.Chance(0.5)) {
      block.selections.push_back(
          Cmp(Col(name, "v"), PickCmp(rng), Lit(rng.UniformInt(0, 4))));
    }
  }
  std::string last = "T" + std::to_string(n_relations - 1);
  block.projection = {Attribute("T0", "v"), Attribute(last, "id")};
  std::vector<QField> qfields = {{Attribute("T0", "v"), false, 5},
                                 {Attribute(last, "id"), false, p.rows - 1}};
  if (rng.Chance(0.4)) {
    block.projection.push_back(Attribute("T0", "s"));
    qfields.push_back({Attribute("T0", "s"), true, 0});
  }
  w->spec.blocks.push_back(std::move(block));
  w->question = MakeQuestion(rng, qfields);
}

/// Star: center C joined to two satellites on distinct key columns.
void MakeStar(Rng& rng, const GenParams& p, GenWorkload* w) {
  Relation center("C", Schema({{"C", "id"}, {"C", "a1"}, {"C", "a2"},
                               {"C", "v"}}));
  for (int64_t r = 0; r < p.rows; ++r) {
    center.AddRow({Value::Int(r), MaybeNullInt(rng, p.domain, p.null_prob),
                   MaybeNullInt(rng, p.domain, p.null_prob),
                   MaybeNullInt(rng, 5, p.null_prob)});
  }
  w->relations.push_back(std::move(center));
  QueryBlock block;
  block.tables.push_back({"C", "C"});
  for (int i = 1; i <= 2; ++i) {
    std::string name = "S" + std::to_string(i);
    Relation sat(name, Schema({{name, "id"}, {name, "b"}, {name, "v"}}));
    for (int64_t r = 0; r < p.rows; ++r) {
      sat.AddRow({Value::Int(r), MaybeNullInt(rng, p.domain, p.null_prob),
                  MaybeNullInt(rng, 5, p.null_prob)});
    }
    w->relations.push_back(std::move(sat));
    block.tables.push_back({name, name});
    block.joins.push_back({Attribute("C", "a" + std::to_string(i)),
                           Attribute(name, "b"), "j" + std::to_string(i)});
    if (rng.Chance(0.5)) {
      block.selections.push_back(
          Cmp(Col(name, "v"), PickCmp(rng), Lit(rng.UniformInt(0, 4))));
    }
  }
  block.projection = {Attribute("C", "v"), Attribute("S1", "v"),
                      Attribute("S2", "v")};
  w->spec.blocks.push_back(std::move(block));
  w->question = MakeQuestion(rng, {{Attribute("C", "v"), false, 5},
                                   {Attribute("S1", "v"), false, 5},
                                   {Attribute("S2", "v"), false, 5}});
}

/// Self-join: T as A joined with T as B on A.ref = B.id. The same stored row
/// appears through both aliases -- the Table 5 "alias trap" pattern the
/// baseline gets wrong.
void MakeSelfJoin(Rng& rng, const GenParams& p, bool plant_trap,
                  GenWorkload* w) {
  Relation rel("T", Schema({{"T", "id"}, {"T", "ref"}, {"T", "v"}}));
  for (int64_t r = 0; r < p.rows; ++r) {
    rel.AddRow({Value::Int(r),
                Value::Int(rng.UniformInt(0, p.rows - 1)),
                MaybeNullInt(rng, 5, p.null_prob)});
  }
  w->relations.push_back(std::move(rel));
  QueryBlock block;
  block.tables.push_back({"A", "T"});
  block.tables.push_back({"B", "T"});
  block.joins.push_back({Attribute("A", "ref"), Attribute("B", "id"), "r"});
  if (plant_trap) {
    // Selection on the *other* alias than the one the question constrains.
    block.selections.push_back(
        Cmp(Col("B", "v"), CompareOp::kGt, Lit(int64_t{4})));
  } else if (rng.Chance(0.6)) {
    block.selections.push_back(
        Cmp(Col(rng.Chance(0.5) ? "A" : "B", "v"), PickCmp(rng),
            Lit(rng.UniformInt(0, 4))));
  }
  block.projection = {Attribute("A", "v"), Attribute("B", "v")};
  w->spec.blocks.push_back(std::move(block));
  if (plant_trap) {
    CTuple tc;
    tc.Add("A.v", Value::Int(rng.UniformInt(0, 5)));
    w->question = WhyNotQuestion(std::move(tc));
  } else {
    w->question = MakeQuestion(rng, {{Attribute("A", "v"), false, 5},
                                     {Attribute("B", "v"), false, 5}});
  }
}

/// Union / difference of two single-table blocks with aligned types.
void MakeSetOp(Rng& rng, const GenParams& p, SetOpKind op, GenWorkload* w) {
  for (int i = 0; i < 2; ++i) {
    std::string name = "U" + std::to_string(i);
    Relation rel(name, Schema({{name, "id"}, {name, "v"}}));
    // Overlapping small domains so difference/union dedup actually fires.
    for (int64_t r = 0; r < p.rows; ++r) {
      rel.AddRow({Value::Int(rng.UniformInt(0, p.domain)),
                  MaybeNullInt(rng, p.domain, p.null_prob)});
    }
    w->relations.push_back(std::move(rel));
    QueryBlock block;
    block.tables.push_back({name, name});
    if (rng.Chance(0.5)) {
      block.selections.push_back(
          Cmp(Col(name, "v"), PickCmp(rng), Lit(rng.UniformInt(0, 4))));
    }
    block.projection = {Attribute(name, "id"), Attribute(name, "v")};
    w->spec.blocks.push_back(std::move(block));
  }
  w->spec.set_ops.push_back(op);
  // The set operation's output columns carry the first block's unqualified
  // names, so the question uses unqualified fields.
  w->question = MakeQuestion(
      rng, {{Attribute::Unqualified("id"), false, p.domain},
            {Attribute::Unqualified("v"), false, p.domain}});
}

/// Chain + GROUP BY with COUNT/SUM/MIN/MAX and a HAVING-style question on
/// the aggregate output.
void MakeAggregate(Rng& rng, const GenParams& p, GenWorkload* w) {
  int n_relations = static_cast<int>(rng.UniformInt(1, 2));
  QueryBlock block;
  for (int i = 0; i < n_relations; ++i) {
    std::string name = "T" + std::to_string(i);
    Relation rel(name, Schema({{name, "id"},
                               {name, "k" + std::to_string(i)},
                               {name, "k" + std::to_string(i + 1)},
                               {name, "v"}}));
    for (int64_t r = 0; r < p.rows; ++r) {
      rel.AddRow({Value::Int(r), MaybeNullInt(rng, p.domain, p.null_prob),
                  MaybeNullInt(rng, p.domain, p.null_prob),
                  MaybeNullInt(rng, 5, p.null_prob)});
    }
    w->relations.push_back(std::move(rel));
    block.tables.push_back({name, name});
    if (i > 0) {
      std::string prev = "T" + std::to_string(i - 1);
      std::string key = "k" + std::to_string(i);
      block.joins.push_back(
          {Attribute(prev, key), Attribute(name, key), key + "j"});
    }
    if (rng.Chance(0.4)) {
      block.selections.push_back(
          Cmp(Col(name, "v"), PickCmp(rng), Lit(rng.UniformInt(0, 4))));
    }
  }
  std::string last = "T" + std::to_string(n_relations - 1);
  AggSpec agg;
  agg.group_by = {Attribute("T0", "v")};
  agg.calls.push_back({AggFn::kCount, Attribute(last, "id"), "cnt"});
  std::vector<QField> qfields = {{Attribute("T0", "v"), false, 5},
                                 {Attribute::Unqualified("cnt"), false, 4}};
  if (rng.Chance(0.4)) {
    AggFn fn;
    std::string out;
    switch (rng.UniformInt(0, 2)) {
      case 0: fn = AggFn::kSum; out = "sm"; break;
      case 1: fn = AggFn::kMin; out = "mn"; break;
      default: fn = AggFn::kMax; out = "mx"; break;
    }
    agg.calls.push_back({fn, Attribute(last, "v"), out});
    qfields.push_back({Attribute::Unqualified(out), false, 5});
  }
  block.projection = {Attribute("T0", "v")};
  for (const AggCall& call : agg.calls) {
    block.projection.push_back(Attribute::Unqualified(call.out_name));
  }
  block.agg = std::move(agg);
  w->spec.blocks.push_back(std::move(block));
  w->question = MakeQuestion(rng, qfields);
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

size_t GenWorkload::TotalRows() const {
  size_t total = 0;
  for (const Relation& r : relations) total += r.size();
  return total;
}

Result<CompiledWorkload> CompileWorkload(const GenWorkload& w) {
  CompiledWorkload out;
  out.db = std::make_shared<Database>();
  for (const Relation& rel : w.relations) {
    NED_RETURN_NOT_OK(out.db->AddRelation(rel));
  }
  NED_ASSIGN_OR_RETURN(QueryTree tree, Canonicalize(w.spec, *out.db));
  out.tree = std::make_shared<QueryTree>(std::move(tree));
  return out;
}

GenWorkload MakeDiffWorkload(uint64_t seed) {
  Rng rng(seed);
  GenWorkload w;
  w.seed = seed;
  GenParams p = DrawParams(rng);

  int shape = static_cast<int>(rng.UniformInt(0, 9));
  switch (shape) {
    case 0:
    case 1:
    case 2:
      w.scenario = "chain";
      MakeChain(rng, p, static_cast<int>(rng.UniformInt(1, 3)), &w);
      break;
    case 3:
      w.scenario = "star";
      MakeStar(rng, p, &w);
      break;
    case 4:
      w.scenario = "self-join";
      MakeSelfJoin(rng, p, /*plant_trap=*/false, &w);
      break;
    case 5:
      w.scenario = "union";
      MakeSetOp(rng, p, SetOpKind::kUnion, &w);
      break;
    case 6:
      w.scenario = "difference";
      MakeSetOp(rng, p, SetOpKind::kDifference, &w);
      break;
    case 7:
    case 8:
      w.scenario = "aggregate";
      MakeAggregate(rng, p, &w);
      break;
    default: {
      // Planted Table-5 patterns: guaranteed-picky scenarios.
      switch (rng.UniformInt(0, 2)) {
        case 0: {
          // An emptying selection right above a scan (Crime5's empty m4).
          w.scenario = "planted:empty-selection";
          MakeChain(rng, p, 2, &w);
          w.spec.blocks[0].selections.push_back(
              Cmp(Col("T0", "v"), CompareOp::kGt, Lit(p.domain + 10)));
          break;
        }
        case 1:
          // Self-join alias trap (Crime6/7).
          w.scenario = "planted:alias-trap";
          MakeSelfJoin(rng, p, /*plant_trap=*/true, &w);
          break;
        default: {
          // An empty relation: every join over it is picky, and as an InDir
          // relation it never yields a secondary answer (no d in I|S).
          w.scenario = "planted:empty-relation";
          MakeChain(rng, p, 2, &w);
          Relation& victim = w.relations[rng.Chance(0.5) ? 0 : 1];
          victim = Relation(victim.name(), victim.schema());
          break;
        }
      }
    }
  }
  return w;
}

// ---------------------------------------------------------------------------
// SQL printing
// ---------------------------------------------------------------------------

namespace {

std::string SqlLiteral(const Value& v, bool* ok) {
  switch (v.type()) {
    case ValueType::kInt:
      return std::to_string(v.as_int());
    case ValueType::kDouble:
      return std::to_string(v.as_double());
    case ValueType::kString:
      if (v.as_string().find('\'') != std::string::npos) *ok = false;
      return "'" + v.as_string() + "'";
    case ValueType::kNull:
      *ok = false;  // the grammar has no NULL literal
      return "";
  }
  *ok = false;
  return "";
}

std::string SqlAttr(const Attribute& a) {
  return a.qualified() ? a.qualifier + "." + a.name : a.name;
}

const char* SqlAggFn(AggFn fn) {
  switch (fn) {
    case AggFn::kSum: return "SUM";
    case AggFn::kCount: return "COUNT";
    case AggFn::kAvg: return "AVG";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

/// Prints one operand of a printable selection.
std::string SqlOperandOf(const Expression* e, bool* ok) {
  if (auto* col = dynamic_cast<const ColumnRef*>(e)) {
    return SqlAttr(col->attribute());
  }
  if (auto* lit = dynamic_cast<const Literal*>(e)) {
    return SqlLiteral(lit->value(), ok);
  }
  *ok = false;
  return "";
}

/// Prints one block. `union_names` is non-null for the first block of a
/// set-op chain whose spec renames the output columns: plain items gain an
/// `AS <name>` (that is how BindSql round-trips spec.union_names), while an
/// aggregate output whose name differs from the union name is not
/// expressible in the grammar (one alias per select item).
std::string SqlBlock(const QueryBlock& block,
                     const std::vector<std::string>* union_names, bool* ok) {
  std::vector<std::string> items;
  for (size_t k = 0; k < block.projection.size(); ++k) {
    const Attribute& a = block.projection[k];
    const std::string* union_name =
        union_names != nullptr && k < union_names->size()
            ? &(*union_names)[k]
            : nullptr;
    if (a.qualified()) {
      std::string item = SqlAttr(a);
      if (union_name != nullptr && *union_name != a.name) {
        item += " AS " + *union_name;
      }
      items.push_back(std::move(item));
      continue;
    }
    // An unqualified projection entry must be an aggregate output to print.
    bool found = false;
    if (block.agg.has_value()) {
      for (const AggCall& call : block.agg->calls) {
        if (call.out_name == a.name) {
          if (union_name != nullptr && *union_name != call.out_name) {
            *ok = false;
            return "";
          }
          items.push_back(StrCat(SqlAggFn(call.fn), "(", SqlAttr(call.arg),
                                 ") AS ", call.out_name));
          found = true;
          break;
        }
      }
    }
    if (!found) {
      *ok = false;
      return "";
    }
  }
  if (items.empty()) {
    *ok = false;
    return "";
  }
  std::vector<std::string> tables;
  for (const TableRef& t : block.tables) {
    tables.push_back(t.alias == t.table ? t.table : t.table + " " + t.alias);
  }
  std::string sql = "SELECT " + Join(items, ", ") + " FROM " +
                    Join(tables, ", ");
  std::vector<std::string> conds;
  for (const JoinSpec& j : block.joins) {
    conds.push_back(SqlAttr(j.left) + " = " + SqlAttr(j.right));
  }
  for (const ExprPtr& sel : block.selections) {
    auto* cmp = dynamic_cast<const Comparison*>(sel.get());
    if (cmp == nullptr) {
      *ok = false;
      return "";
    }
    std::string l = SqlOperandOf(cmp->left().get(), ok);
    std::string r = SqlOperandOf(cmp->right().get(), ok);
    conds.push_back(l + " " + CompareOpSymbol(cmp->op()) + " " + r);
  }
  if (!conds.empty()) sql += " WHERE " + Join(conds, " AND ");
  if (block.agg.has_value()) {
    std::vector<std::string> groups;
    for (const Attribute& g : block.agg->group_by) groups.push_back(SqlAttr(g));
    if (!groups.empty()) sql += " GROUP BY " + Join(groups, ", ");
  }
  return sql;
}

}  // namespace

std::string SpecToSql(const QuerySpec& spec) {
  bool ok = true;
  std::string sql;
  for (size_t i = 0; i < spec.blocks.size(); ++i) {
    if (i > 0) {
      SetOpKind op =
          i - 1 < spec.set_ops.size() ? spec.set_ops[i - 1] : SetOpKind::kUnion;
      sql += op == SetOpKind::kDifference ? " EXCEPT " : " UNION ";
    }
    sql += SqlBlock(spec.blocks[i],
                    i == 0 && !spec.union_names.empty() ? &spec.union_names
                                                        : nullptr,
                    &ok);
    if (!ok) return "";
  }
  return sql;
}

std::string DescribeWorkload(const GenWorkload& w) {
  std::string out = StrCat("seed: ", w.seed, "\nscenario: ", w.scenario, "\n");
  std::string sql = SpecToSql(w.spec);
  out += "sql: " + (sql.empty() ? std::string("<unprintable>") : sql) + "\n";
  out += "question: " + w.question.ToString() + "\n";
  for (const Relation& r : w.relations) {
    out += r.ToString(/*max_rows=*/100) + "\n";
  }
  return out;
}

}  // namespace ned
