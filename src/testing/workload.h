/// \file workload.h
/// \brief Seeded random Why-Not workloads for differential testing.
///
/// Extends the chain-query generator of tests/property_test.cpp to the full
/// supported query class: chains, stars, self-joins, unions, differences and
/// aggregation with HAVING-style conditions on aggregate outputs, over
/// instances that may carry NULLs, strings and empty relations. A slice of
/// the seed space plants "known-picky" scenarios mirroring the Table 5 use
/// case patterns (emptying selections, self-join alias traps, partial piece
/// presence), so the differential harness always exercises non-trivial
/// answers, not just agreeing empties.
///
/// Workloads are value types (relations + QuerySpec + question) so the
/// shrinker can mutate them and recompile; `SpecToSql` prints the query in
/// the SQL front-end's grammar for round-trip tests and repros.

#ifndef NED_TESTING_WORKLOAD_H_
#define NED_TESTING_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/query_tree.h"
#include "canonical/canonicalizer.h"
#include "canonical/query_spec.h"
#include "common/status.h"
#include "relational/database.h"
#include "whynot/ctuple.h"

namespace ned {

/// A generated workload in mutable, serialisable form.
struct GenWorkload {
  uint64_t seed = 0;
  /// Shape label ("chain", "star", "self-join", "union", "difference",
  /// "aggregate", "planted:<pattern>") for diagnostics and repro files.
  std::string scenario;
  std::vector<Relation> relations;
  QuerySpec spec;
  WhyNotQuestion question;

  size_t TotalRows() const;
};

/// A workload compiled against a fresh database.
struct CompiledWorkload {
  std::shared_ptr<Database> db;
  std::shared_ptr<QueryTree> tree;
};

/// Builds the database from `w.relations` and canonicalizes `w.spec`.
Result<CompiledWorkload> CompileWorkload(const GenWorkload& w);

/// Deterministically generates the workload for `seed`.
GenWorkload MakeDiffWorkload(uint64_t seed);

/// Prints `spec` in the SQL subset grammar (ast.h). Returns "" when the spec
/// uses a construct the grammar cannot express (e.g. a non-comparison
/// selection); generated workloads always print.
std::string SpecToSql(const QuerySpec& spec);

/// Multi-line human-readable dump: scenario, relations (schema + rows),
/// SQL, question.
std::string DescribeWorkload(const GenWorkload& w);

}  // namespace ned

#endif  // NED_TESTING_WORKLOAD_H_
