/// \file oracle.h
/// \brief Brute-force reference oracle for Why-Not answers (Defs. 2.7-2.14).
///
/// The oracle recomputes detailed, condensed and secondary Why-Not answers
/// *directly from the paper's definitions*: it naively re-evaluates every
/// subquery (nested-loop joins, linear-scan set semantics), re-derives
/// unrenaming, compatibility and valid-successor sets from first principles,
/// and never early-terminates. It exists purely to differentially test the
/// production engine (`src/core`), so it deliberately shares **no algorithmic
/// code** with `src/core`, `src/whynot`, `src/exec` or `src/expr`'s
/// satisfiability solver -- only the relational/value layer and the query
/// *representation* (algebra nodes, c-tuple types), which form the common
/// vocabulary both sides must speak. Even selection predicates and condition
/// satisfiability are re-interpreted here with an independent evaluator.
///
/// Performance is a non-goal: everything is O(n^2)-ish per operator, which is
/// fine for the small randomized instances the differential harness feeds it.

#ifndef NED_TESTING_ORACLE_H_
#define NED_TESTING_ORACLE_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/query_tree.h"
#include "common/status.h"
#include "relational/database.h"
#include "whynot/ctuple.h"

namespace ned {

/// The three answer granularities as plain ordered sets, the most convenient
/// form for differential comparison. A detailed pair with
/// `first == kInvalidTupleId` is the paper's (⊥, Q') entry.
struct OracleAnswer {
  std::set<std::pair<TupleId, const OperatorNode*>> detailed;
  std::set<const OperatorNode*> condensed;
  std::set<const OperatorNode*> secondary;

  bool empty() const {
    return detailed.empty() && condensed.empty() && secondary.empty();
  }
};

/// Oracle outcome for one unrenamed c-tuple.
struct OracleCTupleResult {
  CTuple unrenamed;
  std::set<TupleId> dir;    ///< Dir_tc (Def. 2.8)
  std::set<TupleId> indir;  ///< InDir_tc
  size_t survivors_at_root = 0;
  OracleAnswer answer;
};

/// Oracle outcome for a whole question (set union over c-tuples, Sec. 2.5).
struct OracleResult {
  OracleAnswer answer;
  std::vector<OracleCTupleResult> per_ctuple;
  /// The unrenamed predicate, as the oracle derived it (Def. 2.7).
  std::vector<CTuple> unrenamed;
};

/// Runs the reference semantics for `question` over (tree, db). Mirrors the
/// engine's documented extensions where the paper is silent (set difference,
/// blocked recordings above the breakpoint view V); both are called out in
/// docs/TESTING.md.
Result<OracleResult> OracleExplain(const QueryTree& tree, const Database& db,
                                   const WhyNotQuestion& question);

/// Independent satisfiability check for c-tuple conditions: enumerates
/// candidate valuations over the constants mentioned (plus offsets and
/// numeric midpoints, covering the dense-domain semantics the engine's
/// constraint solver implements analytically). Exposed for direct
/// differential testing against expr/satisfiability.
bool OracleSatisfiable(const std::vector<CPred>& cond,
                       const std::map<std::string, Value>& bindings);

}  // namespace ned

#endif  // NED_TESTING_ORACLE_H_
