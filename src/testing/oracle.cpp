#include "testing/oracle.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>

#include "expr/expression.h"

namespace ned {
namespace {

// ---------------------------------------------------------------------------
// Independent expression interpretation
// ---------------------------------------------------------------------------
// The engine evaluates selection predicates through Expression::Eval; the
// oracle re-interprets the same AST by structure so a bug in the expression
// classes' Eval methods is observable, not inherited.

Result<bool> OEvalBool(const Expression* e, const Tuple& row,
                       const Schema& schema);

Result<Value> OEvalExpr(const Expression* e, const Tuple& row,
                        const Schema& schema) {
  if (auto* col = dynamic_cast<const ColumnRef*>(e)) {
    NED_ASSIGN_OR_RETURN(size_t idx, schema.Resolve(col->attribute()));
    if (idx >= row.size()) {
      return Status::Internal("oracle: tuple narrower than schema");
    }
    return row.at(idx);
  }
  if (auto* lit = dynamic_cast<const Literal*>(e)) return lit->value();
  if (auto* cmp = dynamic_cast<const Comparison*>(e)) {
    NED_ASSIGN_OR_RETURN(Value l, OEvalExpr(cmp->left().get(), row, schema));
    NED_ASSIGN_OR_RETURN(Value r, OEvalExpr(cmp->right().get(), row, schema));
    return Value::Int(Value::Satisfies(l, cmp->op(), r) ? 1 : 0);
  }
  if (auto* con = dynamic_cast<const Conjunction*>(e)) {
    for (const auto& t : con->terms()) {
      NED_ASSIGN_OR_RETURN(bool b, OEvalBool(t.get(), row, schema));
      if (!b) return Value::Int(0);
    }
    return Value::Int(1);
  }
  if (auto* dis = dynamic_cast<const Disjunction*>(e)) {
    for (const auto& t : dis->terms()) {
      NED_ASSIGN_OR_RETURN(bool b, OEvalBool(t.get(), row, schema));
      if (b) return Value::Int(1);
    }
    return Value::Int(0);
  }
  if (dynamic_cast<const Not*>(e) != nullptr) {
    // Not exposes no accessor; negation of EvalBool over its rendering is not
    // reconstructible structurally, so fall back to the class's Eval. The
    // workload generator does not emit NOT, keeping this path cold.
    return e->Eval(row, schema);
  }
  return Status::Internal("oracle: unknown expression node " + e->ToString());
}

Result<bool> OEvalBool(const Expression* e, const Tuple& row,
                       const Schema& schema) {
  NED_ASSIGN_OR_RETURN(Value v, OEvalExpr(e, row, schema));
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.as_int() != 0;
  return Status::TypeError("oracle: expression is not boolean: " +
                           e->ToString());
}

// ---------------------------------------------------------------------------
// Naive evaluation with lineage
// ---------------------------------------------------------------------------

/// An output tuple of the naive evaluator. `preds` point at the immediate
/// predecessors as (producing node, index into its output); `lineage` is the
/// set of base TupleIds it derives from.
struct OTuple {
  Tuple values;
  std::set<TupleId> lineage;
  std::vector<std::pair<const OperatorNode*, size_t>> preds;
};

std::set<TupleId> LineageUnion(const std::set<TupleId>& a,
                               const std::set<TupleId>& b) {
  std::set<TupleId> out = a;
  out.insert(b.begin(), b.end());
  return out;
}

/// Recomputes every subquery's output bottom-up with textbook nested-loop /
/// linear-scan implementations. Set semantics merge value-equal tuples under
/// *exact* Tuple equality (as the engine's documented contract does), while
/// equi-join keys compare with numeric coercion (Value::Satisfies).
class NaiveEval {
 public:
  NaiveEval(const QueryTree* tree, const Database* db)
      : tree_(tree), db_(db) {}

  Status Run() {
    uint32_t ordinal = 0;
    for (const OperatorNode* scan : tree_->scans()) {
      NED_ASSIGN_OR_RETURN(const Relation* rel,
                           db_->GetRelation(scan->base_table));
      std::vector<OTuple> tuples;
      tuples.reserve(rel->size());
      for (size_t row = 0; row < rel->size(); ++row) {
        OTuple t;
        t.values = rel->row(row);
        t.lineage = {MakeTupleId(ordinal, row)};
        tuples.push_back(std::move(t));
      }
      out_.emplace(scan, std::move(tuples));
      ordinal_of_[scan->alias] = ordinal;
      ++ordinal;
    }
    for (const OperatorNode* node : tree_->bottom_up()) {
      if (node->is_leaf()) continue;
      NED_ASSIGN_OR_RETURN(std::vector<OTuple> tuples, Compute(node));
      out_.emplace(node, std::move(tuples));
    }
    return Status::OK();
  }

  const std::vector<OTuple>& Output(const OperatorNode* node) const {
    return out_.at(node);
  }
  uint32_t OrdinalOf(const std::string& alias) const {
    return ordinal_of_.at(alias);
  }

 private:
  Result<std::vector<OTuple>> Compute(const OperatorNode* node) {
    switch (node->kind) {
      case OpKind::kSelect:
        return ComputeSelect(node);
      case OpKind::kProject:
        return ComputeProject(node);
      case OpKind::kJoin:
        return ComputeJoin(node);
      case OpKind::kUnion:
        return ComputeUnion(node);
      case OpKind::kDifference:
        return ComputeDifference(node);
      case OpKind::kAggregate:
        return ComputeAggregate(node);
      case OpKind::kScan:
        break;
    }
    return Status::Internal("oracle: unexpected operator kind");
  }

  Result<std::vector<OTuple>> ComputeSelect(const OperatorNode* node) {
    const OperatorNode* child = node->children[0].get();
    const std::vector<OTuple>& in = out_.at(child);
    std::vector<OTuple> out;
    for (size_t i = 0; i < in.size(); ++i) {
      NED_ASSIGN_OR_RETURN(
          bool keep,
          OEvalBool(node->predicate.get(), in[i].values, child->output_schema));
      if (!keep) continue;
      OTuple o;
      o.values = in[i].values;
      o.lineage = in[i].lineage;
      o.preds = {{child, i}};
      out.push_back(std::move(o));
    }
    return out;
  }

  /// Appends `values` to `out` under set semantics: an exactly value-equal
  /// existing tuple absorbs the new predecessor and lineage instead.
  static void EmitSetSemantics(Tuple values, const OTuple& source,
                               const OperatorNode* source_node, size_t index,
                               std::vector<OTuple>* out) {
    for (OTuple& existing : *out) {
      if (existing.values == values) {
        existing.preds.emplace_back(source_node, index);
        existing.lineage = LineageUnion(existing.lineage, source.lineage);
        return;
      }
    }
    OTuple o;
    o.values = std::move(values);
    o.lineage = source.lineage;
    o.preds = {{source_node, index}};
    out->push_back(std::move(o));
  }

  Result<std::vector<OTuple>> ComputeProject(const OperatorNode* node) {
    const OperatorNode* child = node->children[0].get();
    const std::vector<OTuple>& in = out_.at(child);
    std::vector<size_t> indices;
    for (const auto& a : node->projection) {
      NED_ASSIGN_OR_RETURN(size_t idx, child->output_schema.Resolve(a));
      indices.push_back(idx);
    }
    std::vector<OTuple> out;
    for (size_t i = 0; i < in.size(); ++i) {
      std::vector<Value> values;
      values.reserve(indices.size());
      for (size_t idx : indices) values.push_back(in[i].values.at(idx));
      EmitSetSemantics(Tuple(std::move(values)), in[i], child, i, &out);
    }
    return out;
  }

  Result<std::vector<OTuple>> ComputeJoin(const OperatorNode* node) {
    const OperatorNode* lc = node->children[0].get();
    const OperatorNode* rc = node->children[1].get();
    const std::vector<OTuple>& left = out_.at(lc);
    const std::vector<OTuple>& right = out_.at(rc);
    const Schema& ls = lc->output_schema;
    const Schema& rs = rc->output_schema;

    std::vector<size_t> lkey, rkey;
    for (const auto& t : node->renaming.triples()) {
      NED_ASSIGN_OR_RETURN(size_t li, ls.Resolve(t.a1));
      NED_ASSIGN_OR_RETURN(size_t ri, rs.Resolve(t.a2));
      lkey.push_back(li);
      rkey.push_back(ri);
    }

    // Output column sources, resolved as the output schema prescribes:
    // renamed attributes read from the left operand.
    struct Source {
      int side;
      size_t index;
    };
    std::vector<Source> sources;
    for (const auto& attr : node->output_schema.attributes()) {
      std::optional<Source> src;
      if (attr.qualified()) {
        if (auto idx = ls.IndexOf(attr); idx.has_value()) src = Source{0, *idx};
        else if (auto ridx = rs.IndexOf(attr); ridx.has_value())
          src = Source{1, *ridx};
      } else {
        std::optional<RenameTriple> triple =
            node->renaming.FindByNewName(attr.name);
        if (triple.has_value()) {
          NED_ASSIGN_OR_RETURN(size_t idx, ls.Resolve(triple->a1));
          src = Source{0, idx};
        } else if (auto idx = ls.IndexOf(attr); idx.has_value()) {
          src = Source{0, *idx};
        } else if (auto ridx = rs.IndexOf(attr); ridx.has_value()) {
          src = Source{1, *ridx};
        }
      }
      if (!src.has_value()) {
        return Status::Internal("oracle: join output attribute has no source");
      }
      sources.push_back(*src);
    }

    std::vector<OTuple> out;
    for (size_t i = 0; i < left.size(); ++i) {
      for (size_t j = 0; j < right.size(); ++j) {
        bool keys_equal = true;
        for (size_t k = 0; k < lkey.size(); ++k) {
          // NULL never joins: Satisfies is false whenever a side is NULL.
          if (!Value::Satisfies(left[i].values.at(lkey[k]), CompareOp::kEq,
                                right[j].values.at(rkey[k]))) {
            keys_equal = false;
            break;
          }
        }
        if (!keys_equal) continue;
        std::vector<Value> values;
        values.reserve(sources.size());
        for (const Source& s : sources) {
          values.push_back(s.side == 0 ? left[i].values.at(s.index)
                                       : right[j].values.at(s.index));
        }
        Tuple joined(std::move(values));
        if (node->extra_predicate != nullptr) {
          NED_ASSIGN_OR_RETURN(bool keep,
                               OEvalBool(node->extra_predicate.get(), joined,
                                         node->output_schema));
          if (!keep) continue;
        }
        OTuple o;
        o.values = std::move(joined);
        o.lineage = LineageUnion(left[i].lineage, right[j].lineage);
        o.preds = {{lc, i}, {rc, j}};
        out.push_back(std::move(o));
      }
    }
    return out;
  }

  /// Column mapping of a union/difference operand into the output layout.
  Result<std::vector<size_t>> SideMapping(const OperatorNode* node,
                                          const Schema& side) const {
    std::vector<size_t> map(node->output_schema.size(), 0);
    for (size_t out_i = 0; out_i < node->output_schema.size(); ++out_i) {
      const Attribute& target = node->output_schema.at(out_i);
      bool found = false;
      for (size_t i = 0; i < side.size(); ++i) {
        if (node->renaming.Apply(side.at(i)) == target) {
          map[out_i] = i;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::TypeError("oracle: set operand missing attribute " +
                                 target.FullName());
      }
    }
    return map;
  }

  static Tuple MapTuple(const Tuple& t, const std::vector<size_t>& map) {
    std::vector<Value> values;
    values.reserve(map.size());
    for (size_t i : map) values.push_back(t.at(i));
    return Tuple(std::move(values));
  }

  Result<std::vector<OTuple>> ComputeUnion(const OperatorNode* node) {
    const OperatorNode* lc = node->children[0].get();
    const OperatorNode* rc = node->children[1].get();
    NED_ASSIGN_OR_RETURN(std::vector<size_t> lmap,
                         SideMapping(node, lc->output_schema));
    NED_ASSIGN_OR_RETURN(std::vector<size_t> rmap,
                         SideMapping(node, rc->output_schema));
    std::vector<OTuple> out;
    const std::vector<OTuple>& left = out_.at(lc);
    for (size_t i = 0; i < left.size(); ++i) {
      EmitSetSemantics(MapTuple(left[i].values, lmap), left[i], lc, i, &out);
    }
    const std::vector<OTuple>& right = out_.at(rc);
    for (size_t j = 0; j < right.size(); ++j) {
      EmitSetSemantics(MapTuple(right[j].values, rmap), right[j], rc, j, &out);
    }
    return out;
  }

  Result<std::vector<OTuple>> ComputeDifference(const OperatorNode* node) {
    const OperatorNode* lc = node->children[0].get();
    const OperatorNode* rc = node->children[1].get();
    NED_ASSIGN_OR_RETURN(std::vector<size_t> lmap,
                         SideMapping(node, lc->output_schema));
    NED_ASSIGN_OR_RETURN(std::vector<size_t> rmap,
                         SideMapping(node, rc->output_schema));
    std::vector<Tuple> right_values;
    for (const OTuple& t : out_.at(rc)) {
      right_values.push_back(MapTuple(t.values, rmap));
    }
    std::vector<OTuple> out;
    const std::vector<OTuple>& left = out_.at(lc);
    for (size_t i = 0; i < left.size(); ++i) {
      Tuple mapped = MapTuple(left[i].values, lmap);
      // Membership in the right operand is exact value equality, matching the
      // engine's documented set-semantics contract.
      if (std::find(right_values.begin(), right_values.end(), mapped) !=
          right_values.end()) {
        continue;
      }
      EmitSetSemantics(std::move(mapped), left[i], lc, i, &out);
    }
    return out;
  }

  Result<std::vector<OTuple>> ComputeAggregate(const OperatorNode* node) {
    const OperatorNode* child = node->children[0].get();
    const std::vector<OTuple>& in = out_.at(child);
    std::vector<size_t> group_idx;
    for (const auto& g : node->group_by) {
      NED_ASSIGN_OR_RETURN(size_t idx, child->output_schema.Resolve(g));
      group_idx.push_back(idx);
    }
    // Group in first-seen order under exact key equality.
    std::vector<Tuple> keys;
    std::vector<std::vector<size_t>> groups;
    for (size_t i = 0; i < in.size(); ++i) {
      std::vector<Value> key_values;
      for (size_t idx : group_idx) key_values.push_back(in[i].values.at(idx));
      Tuple key(std::move(key_values));
      size_t g = 0;
      for (; g < keys.size(); ++g) {
        if (keys[g] == key) break;
      }
      if (g == keys.size()) {
        keys.push_back(std::move(key));
        groups.emplace_back();
      }
      groups[g].push_back(i);
    }

    std::vector<OTuple> out;
    for (size_t g = 0; g < groups.size(); ++g) {
      std::vector<const Tuple*> members;
      for (size_t i : groups[g]) members.push_back(&in[i].values);
      NED_ASSIGN_OR_RETURN(
          std::vector<Value> agg_values,
          AggregateGroup(node->aggregates, members, child->output_schema));
      std::vector<Value> values = keys[g].values();
      for (Value& v : agg_values) values.push_back(std::move(v));
      OTuple o;
      o.values = Tuple(std::move(values));
      for (size_t i : groups[g]) {
        o.preds.emplace_back(child, i);
        o.lineage = LineageUnion(o.lineage, in[i].lineage);
      }
      out.push_back(std::move(o));
    }
    return out;
  }

  const QueryTree* tree_;
  const Database* db_;
  std::map<const OperatorNode*, std::vector<OTuple>> out_;
  std::map<std::string, uint32_t> ordinal_of_;

 public:
  /// One aggregate row's call values for `members` (Def. 2.2-3 semantics:
  /// NULLs are ignored, empty sum/avg are NULL, min/max compare via the
  /// coercing order).
  static Result<std::vector<Value>> AggregateGroup(
      const std::vector<AggCall>& calls, const std::vector<const Tuple*>& members,
      const Schema& schema) {
    std::vector<Value> out;
    for (const AggCall& call : calls) {
      NED_ASSIGN_OR_RETURN(size_t idx, schema.Resolve(call.arg));
      int64_t count = 0;
      double sum = 0;
      bool numeric_ok = true;
      std::optional<Value> min_v, max_v;
      for (const Tuple* t : members) {
        const Value& v = t->at(idx);
        if (v.is_null()) continue;
        ++count;
        if (v.is_numeric()) sum += v.NumericValue();
        else numeric_ok = false;
        if (!min_v.has_value() ||
            Value::Satisfies(v, CompareOp::kLt, *min_v)) {
          min_v = v;
        }
        if (!max_v.has_value() ||
            Value::Satisfies(v, CompareOp::kGt, *max_v)) {
          max_v = v;
        }
      }
      switch (call.fn) {
        case AggFn::kCount:
          out.push_back(Value::Int(count));
          break;
        case AggFn::kSum:
          if (count == 0) out.push_back(Value::Null());
          else if (!numeric_ok)
            return Status::TypeError("oracle: sum over non-numeric attribute");
          else out.push_back(Value::Real(sum));
          break;
        case AggFn::kAvg:
          if (count == 0) out.push_back(Value::Null());
          else if (!numeric_ok)
            return Status::TypeError("oracle: avg over non-numeric attribute");
          else out.push_back(Value::Real(sum / static_cast<double>(count)));
          break;
        case AggFn::kMin:
          out.push_back(min_v.value_or(Value::Null()));
          break;
        case AggFn::kMax:
          out.push_back(max_v.value_or(Value::Null()));
          break;
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Unrenaming (Def. 2.7), re-derived
// ---------------------------------------------------------------------------

void CollectTriples(const OperatorNode* node, std::vector<RenameTriple>* out) {
  if (node->kind == OpKind::kJoin) {
    for (const auto& t : node->renaming.triples()) out->push_back(t);
  }
  for (const auto& child : node->children) CollectTriples(child.get(), out);
}

/// Recursively replaces a field on a join-introduced attribute Anew by fields
/// on both origins A1 and A2. Returns false on contradictory constants.
bool ExpandField(const Attribute& attr, const CValue& value,
                 const std::vector<RenameTriple>& triples,
                 std::vector<std::pair<Attribute, CValue>>* done) {
  if (!attr.qualified()) {
    for (const auto& t : triples) {
      if (t.anew == attr.name) {
        return ExpandField(t.a1, value, triples, done) &&
               ExpandField(t.a2, value, triples, done);
      }
    }
  }
  for (const auto& [a, v] : *done) {
    if (a == attr) {
      if (v == value) return true;  // exact duplicate: drop
      if (!v.is_var && !value.is_var &&
          !Value::Satisfies(v.constant, CompareOp::kEq, value.constant)) {
        return false;  // two contradictory constants for one attribute
      }
    }
  }
  done->emplace_back(attr, value);
  return true;
}

/// nu|side^-1 through a union/difference renaming.
CTuple InverseSide(const CTuple& tc, const Renaming& renaming, int side) {
  CTuple out;
  for (const auto& [attr, value] : tc.fields()) {
    if (!attr.qualified()) {
      std::optional<RenameTriple> triple = renaming.FindByNewName(attr.name);
      if (triple.has_value()) {
        out.AddField(side == 1 ? triple->a1 : triple->a2, value);
        continue;
      }
    }
    out.AddField(attr, value);
  }
  for (const auto& pred : tc.cond()) out.Where(pred);
  return out;
}

void OUnrename(const OperatorNode* node, const CTuple& tc,
               std::vector<CTuple>* out) {
  if (node->kind == OpKind::kDifference) {
    // Only the left operand produces output tuples, so the question descends
    // left; right-operand pickiness surfaces at the difference node itself.
    OUnrename(node->children[0].get(), InverseSide(tc, node->renaming, 1), out);
    return;
  }
  if (node->kind == OpKind::kUnion) {
    OUnrename(node->children[0].get(), InverseSide(tc, node->renaming, 1), out);
    OUnrename(node->children[1].get(), InverseSide(tc, node->renaming, 2), out);
    return;
  }
  std::vector<RenameTriple> triples;
  CollectTriples(node, &triples);
  std::vector<std::pair<Attribute, CValue>> done;
  for (const auto& [attr, value] : tc.fields()) {
    if (!ExpandField(attr, value, triples, &done)) return;  // contradictory
  }
  CTuple expanded;
  for (auto& [attr, value] : done) expanded.AddField(attr, value);
  for (const auto& pred : tc.cond()) expanded.Where(pred);
  out->push_back(std::move(expanded));
}

// ---------------------------------------------------------------------------
// Cond-alpha (Defs. 2.9-2.10), re-derived
// ---------------------------------------------------------------------------

struct OCondAlpha {
  std::vector<std::pair<Attribute, CValue>> group_fields;
  std::vector<std::pair<Attribute, CValue>> agg_fields;
  std::vector<CPred> cond;
};

bool RowMatchesCondAlpha(const OCondAlpha& ca, const Tuple& row,
                         const Schema& row_schema) {
  std::map<std::string, Value> bindings;
  auto check_field = [&](const Attribute& attr, const CValue& cval) -> bool {
    std::optional<size_t> idx = row_schema.IndexOf(attr);
    if (!idx.has_value()) return true;  // attribute projected away: skip
    const Value& v = row.at(*idx);
    if (!cval.is_var) {
      return Value::Satisfies(v, CompareOp::kEq, cval.constant);
    }
    auto it = bindings.find(cval.var);
    if (it != bindings.end()) {
      return Value::Satisfies(it->second, CompareOp::kEq, v);
    }
    bindings.emplace(cval.var, v);
    return true;
  };
  for (const auto& [attr, cval] : ca.group_fields) {
    if (!check_field(attr, cval)) return false;
  }
  for (const auto& [attr, cval] : ca.agg_fields) {
    if (!check_field(attr, cval)) return false;
  }
  return OracleSatisfiable(ca.cond, bindings);
}

/// Does `tuples` (typed by `schema`) contain / aggregate to a row matching
/// the aggregation-relevant part of the question?
Result<bool> OCondAlphaHolds(const OCondAlpha& ca,
                             const std::vector<OTuple>& tuples,
                             const Schema& schema,
                             const OperatorNode* aggregate) {
  if (ca.agg_fields.empty()) return false;

  bool has_agg_outputs = true;
  for (const auto& [attr, _] : ca.agg_fields) {
    if (!schema.Contains(attr)) {
      has_agg_outputs = false;
      break;
    }
  }
  if (has_agg_outputs) {
    for (const OTuple& t : tuples) {
      if (RowMatchesCondAlpha(ca, t.values, schema)) return true;
    }
    return false;
  }

  // Below the aggregate: apply alpha_{G,F} first, when the schema covers G
  // and the aggregation arguments.
  NED_CHECK(aggregate != nullptr);
  Schema needed;
  for (const auto& g : aggregate->group_by) {
    if (!needed.Contains(g)) needed.Add(g);
  }
  for (const auto& call : aggregate->aggregates) {
    if (!needed.Contains(call.arg)) needed.Add(call.arg);
  }
  if (!schema.ContainsAll(needed)) return false;

  Schema row_schema;
  for (const auto& g : aggregate->group_by) row_schema.Add(g);
  for (const auto& call : aggregate->aggregates) {
    row_schema.Add(Attribute::Unqualified(call.out_name));
  }
  // Group the tuples by G (first-seen order) and aggregate each group.
  std::vector<size_t> group_idx;
  for (const auto& g : aggregate->group_by) {
    NED_ASSIGN_OR_RETURN(size_t idx, schema.Resolve(g));
    group_idx.push_back(idx);
  }
  std::vector<Tuple> keys;
  std::vector<std::vector<const Tuple*>> groups;
  for (const OTuple& t : tuples) {
    std::vector<Value> key_values;
    for (size_t idx : group_idx) key_values.push_back(t.values.at(idx));
    Tuple key(std::move(key_values));
    size_t g = 0;
    for (; g < keys.size(); ++g) {
      if (keys[g] == key) break;
    }
    if (g == keys.size()) {
      keys.push_back(std::move(key));
      groups.emplace_back();
    }
    groups[g].push_back(&t.values);
  }
  for (size_t g = 0; g < keys.size(); ++g) {
    NED_ASSIGN_OR_RETURN(
        std::vector<Value> agg_values,
        NaiveEval::AggregateGroup(aggregate->aggregates, groups[g], schema));
    std::vector<Value> values = keys[g].values();
    for (Value& v : agg_values) values.push_back(std::move(v));
    if (RowMatchesCondAlpha(ca, Tuple(std::move(values)), row_schema)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Compatibility (Def. 2.8), re-derived
// ---------------------------------------------------------------------------

bool OCompatible(const CTuple& tc, const Tuple& tuple, const Schema& schema) {
  NED_CHECK(schema.size() > 0);
  const std::string& alias = schema.at(0).qualifier;
  bool any_shared = false;
  std::map<std::string, Value> bindings;
  for (const auto& [attr, value] : tc.fields()) {
    if (attr.qualifier != alias) continue;
    std::optional<size_t> idx = schema.IndexOf(attr);
    if (!idx.has_value()) continue;
    any_shared = true;
    const Value& tuple_value = tuple.at(*idx);
    if (!value.is_var) {
      if (!Value::Satisfies(tuple_value, CompareOp::kEq, value.constant)) {
        return false;
      }
    } else {
      auto it = bindings.find(value.var);
      if (it != bindings.end()) {
        if (!Value::Satisfies(it->second, CompareOp::kEq, tuple_value)) {
          return false;
        }
      } else {
        bindings.emplace(value.var, tuple_value);
      }
    }
  }
  if (!any_shared) return false;
  return OracleSatisfiable(tc.cond(), bindings);
}

// ---------------------------------------------------------------------------
// Breakpoint view V (Sec. 3.1, 2b), re-derived
// ---------------------------------------------------------------------------

struct TreeContext {
  const OperatorNode* aggregate = nullptr;
  const OperatorNode* breakpoint = nullptr;
  std::vector<std::string> agg_output_names;
};

Result<TreeContext> AnalyzeTree(const QueryTree& tree) {
  TreeContext tc;
  for (const OperatorNode* node : tree.bottom_up()) {
    if (node->kind != OpKind::kAggregate) continue;
    if (tc.aggregate != nullptr) {
      return Status::Unsupported(
          "oracle: more than one aggregation is outside the supported class");
    }
    tc.aggregate = node;
    for (const auto& call : node->aggregates) {
      tc.agg_output_names.push_back(call.out_name);
    }
  }
  if (tc.aggregate == nullptr) return tc;
  Schema needed;
  for (const auto& g : tc.aggregate->group_by) {
    if (!needed.Contains(g)) needed.Add(g);
  }
  for (const auto& call : tc.aggregate->aggregates) {
    if (!needed.Contains(call.arg)) needed.Add(call.arg);
  }
  for (const OperatorNode* node : tree.bottom_up()) {
    if (!OperatorNode::IsInSubtree(tc.aggregate, node)) continue;
    if (node->output_schema.ContainsAll(needed)) {
      tc.breakpoint = node;
      return tc;
    }
  }
  return Status::Internal("oracle: no subquery covers the aggregation type");
}

// ---------------------------------------------------------------------------
// Per-c-tuple answer derivation (Defs. 2.11-2.14)
// ---------------------------------------------------------------------------

Result<OracleCTupleResult> ExplainOneCTuple(const QueryTree& tree,
                                            const NaiveEval& eval,
                                            const TreeContext& tctx,
                                            const CTuple& tc) {
  OracleCTupleResult result;
  result.unrenamed = tc;

  // -- Dir / InDir (Def. 2.8).
  OCondAlpha ca;
  std::set<std::string> referenced;
  for (const auto& [attr, value] : tc.fields()) {
    if (attr.qualified()) {
      referenced.insert(attr.qualifier);
      ca.group_fields.emplace_back(attr, value);
      continue;
    }
    if (std::find(tctx.agg_output_names.begin(), tctx.agg_output_names.end(),
                  attr.name) == tctx.agg_output_names.end()) {
      return Status::InvalidArgument(
          "oracle: unrenamed c-tuple field is neither qualified nor an "
          "aggregate output: " +
          attr.FullName());
    }
    ca.agg_fields.emplace_back(attr, value);
  }
  ca.cond = tc.cond();

  std::vector<const OperatorNode*> indir_scans;
  for (const OperatorNode* scan : tree.scans()) {
    const std::vector<OTuple>& base = eval.Output(scan);
    if (referenced.count(scan->alias) == 0) {
      indir_scans.push_back(scan);
      for (const OTuple& t : base) result.indir.insert(*t.lineage.begin());
      continue;
    }
    for (const OTuple& t : base) {
      if (OCompatible(tc, t.values, scan->output_schema)) {
        result.dir.insert(*t.lineage.begin());
      }
    }
  }
  std::set<TupleId> all = result.dir;
  all.insert(result.indir.begin(), result.indir.end());

  // -- Valid successors (Notation 2.1): per node, the outputs whose lineage
  //    stays inside D, touches Dir, and that descend from a valid input.
  std::map<const OperatorNode*, std::vector<char>> valid;
  auto is_subset = [](const std::set<TupleId>& sub,
                      const std::set<TupleId>& super) {
    return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
  };
  auto dir_part = [&](const std::set<TupleId>& lineage) {
    std::set<TupleId> out;
    std::set_intersection(lineage.begin(), lineage.end(), result.dir.begin(),
                          result.dir.end(), std::inserter(out, out.begin()));
    return out;
  };
  for (const OperatorNode* m : tree.bottom_up()) {
    const std::vector<OTuple>& out = eval.Output(m);
    std::vector<char>& flags = valid[m];
    flags.assign(out.size(), 0);
    for (size_t i = 0; i < out.size(); ++i) {
      if (m->is_leaf()) {
        flags[i] = result.dir.count(*out[i].lineage.begin()) > 0;
        continue;
      }
      if (!is_subset(out[i].lineage, all)) continue;
      if (dir_part(out[i].lineage).empty()) continue;
      for (const auto& [child, idx] : out[i].preds) {
        if (valid.at(child)[idx] != 0) {
          flags[i] = 1;
          break;
        }
      }
    }
  }

  // -- Detailed answer (Defs. 2.11-2.12): a subquery is picky w.r.t. t_I in
  //    Dir iff some valid input successor of t_I reaches it and no valid
  //    output successor leaves it.
  for (const OperatorNode* m : tree.bottom_up()) {
    if (m->is_leaf()) continue;
    std::set<TupleId> in_dirs;  // Dir tuples with a valid successor in m.Input
    for (const auto& child : m->children) {
      const std::vector<OTuple>& child_out = eval.Output(child.get());
      const std::vector<char>& child_valid = valid.at(child.get());
      for (size_t i = 0; i < child_out.size(); ++i) {
        if (child_valid[i] == 0) continue;
        std::set<TupleId> dirs = dir_part(child_out[i].lineage);
        in_dirs.insert(dirs.begin(), dirs.end());
      }
    }
    std::set<TupleId> out_dirs;  // Dir tuples still alive in m.Output
    const std::vector<OTuple>& m_out = eval.Output(m);
    const std::vector<char>& m_valid = valid.at(m);
    for (size_t i = 0; i < m_out.size(); ++i) {
      if (m_valid[i] == 0) continue;
      std::set<TupleId> dirs = dir_part(m_out[i].lineage);
      out_dirs.insert(dirs.begin(), dirs.end());
    }
    if (m->parent == nullptr) {
      size_t survivors = 0;
      for (char f : m_valid) survivors += (f != 0);
      result.survivors_at_root = survivors;
    }

    std::set<TupleId> pairs;
    std::set_difference(in_dirs.begin(), in_dirs.end(), out_dirs.begin(),
                        out_dirs.end(), std::inserter(pairs, pairs.begin()));

    bool above_v = tctx.breakpoint != nullptr && m != tctx.breakpoint &&
                   OperatorNode::IsInSubtree(m, tctx.breakpoint);
    if (!above_v) {
      for (TupleId t : pairs) result.answer.detailed.emplace(t, m);
    } else {
      // Above the breakpoint the aggregation condition governs (Alg. 3 lines
      // 9-12): a satisfied-to-violated flip marks the subquery, with the
      // paper's (⊥, Q') entry when no concrete Dir pair witnesses it.
      bool in_ok = false;
      for (const auto& child : m->children) {
        NED_ASSIGN_OR_RETURN(
            bool ok, OCondAlphaHolds(ca, eval.Output(child.get()),
                                     child->output_schema, tctx.aggregate));
        if (ok) {
          in_ok = true;
          break;
        }
      }
      NED_ASSIGN_OR_RETURN(
          bool out_ok,
          OCondAlphaHolds(ca, m_out, m->output_schema, tctx.aggregate));
      for (TupleId t : pairs) result.answer.detailed.emplace(t, m);
      if (in_ok && !out_ok && pairs.empty()) {
        result.answer.detailed.emplace(kInvalidTupleId, m);
      }
    }
  }

  // -- Condensed answer (Def. 2.13): the distinct picky subqueries.
  for (const auto& [_, m] : result.answer.detailed) {
    result.answer.condensed.insert(m);
  }

  // -- Secondary answer (Def. 2.14): for each indirectly responsible
  //    relation, the lowest subquery where its data disappears.
  for (const OperatorNode* scan : indir_scans) {
    if (eval.Output(scan).empty()) continue;  // no d in I|S to be picky about
    uint32_t ordinal = eval.OrdinalOf(scan->alias);
    const OperatorNode* prev = scan;
    for (const OperatorNode* m = scan->parent; m != nullptr;
         prev = m, m = m->parent) {
      // A difference's right operand is *meant* to vanish there.
      if (m->kind == OpKind::kDifference && m->children[1].get() == prev) {
        break;
      }
      bool has_successor = false;
      for (const OTuple& o : eval.Output(m)) {
        for (TupleId id : o.lineage) {
          if (TupleIdAlias(id) == ordinal) {
            has_successor = true;
            break;
          }
        }
        if (has_successor) break;
      }
      if (!has_successor) {
        result.answer.secondary.insert(m);
        break;
      }
    }
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Condition satisfiability by enumeration
// ---------------------------------------------------------------------------

bool OracleSatisfiable(const std::vector<CPred>& cond,
                       const std::map<std::string, Value>& bindings) {
  if (cond.empty()) return true;

  // Free variables, in first-mention order.
  std::vector<std::string> free;
  auto note_var = [&](const std::string& v) {
    if (bindings.count(v) > 0) return;
    if (std::find(free.begin(), free.end(), v) == free.end()) {
      free.push_back(v);
    }
  };
  for (const CPred& p : cond) {
    note_var(p.lhs_var);
    if (p.rhs_is_var) note_var(p.rhs_var);
  }

  auto holds_under = [&](const std::map<std::string, Value>& env) {
    for (const CPred& p : cond) {
      auto l = env.find(p.lhs_var);
      if (l == env.end()) return false;
      const Value& rhs =
          p.rhs_is_var ? env.at(p.rhs_var) : p.rhs_const;
      if (p.rhs_is_var && env.find(p.rhs_var) == env.end()) return false;
      if (!Value::Satisfies(l->second, p.op, rhs)) return false;
    }
    return true;
  };
  if (free.empty()) return holds_under(bindings);

  // Candidate values: every mentioned constant/bound value, plus offsets and
  // pairwise midpoints for numerics (the dense-domain witnesses an analytic
  // solver would find), plus string neighbours, plus small integer defaults
  // so constant-free chains like x < y < z have witnesses.
  std::vector<Value> candidates;
  std::vector<double> numerics;
  auto add_candidate = [&](Value v) {
    for (const Value& c : candidates) {
      if (c == v) return;
    }
    candidates.push_back(std::move(v));
  };
  auto add_base = [&](const Value& v) {
    if (v.is_null()) return;
    add_candidate(v);
    if (v.is_numeric()) {
      double x = v.NumericValue();
      numerics.push_back(x);
      add_candidate(Value::Real(x - 1));
      add_candidate(Value::Real(x - 0.5));
      add_candidate(Value::Real(x + 0.5));
      add_candidate(Value::Real(x + 1));
    } else if (v.type() == ValueType::kString) {
      add_candidate(Value::Str(""));
      add_candidate(Value::Str(v.as_string() + "!"));
    }
  };
  for (const CPred& p : cond) {
    if (!p.rhs_is_var) add_base(p.rhs_const);
  }
  for (const auto& [_, v] : bindings) add_base(v);
  for (size_t i = 0; i < numerics.size(); ++i) {
    for (size_t j = i + 1; j < numerics.size(); ++j) {
      add_candidate(Value::Real((numerics[i] + numerics[j]) / 2));
    }
  }
  for (int64_t d = -2; d <= 2; ++d) add_candidate(Value::Int(d));

  // Depth-first enumeration over the (small) candidate grid.
  std::map<std::string, Value> env = bindings;
  std::function<bool(size_t)> assign = [&](size_t k) -> bool {
    if (k == free.size()) return holds_under(env);
    for (const Value& v : candidates) {
      env[free[k]] = v;
      if (assign(k + 1)) return true;
    }
    env.erase(free[k]);
    return false;
  };
  return assign(0);
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

Result<OracleResult> OracleExplain(const QueryTree& tree, const Database& db,
                                   const WhyNotQuestion& question) {
  NED_ASSIGN_OR_RETURN(TreeContext tctx, AnalyzeTree(tree));

  NaiveEval eval(&tree, &db);
  NED_RETURN_NOT_OK(eval.Run());

  OracleResult result;
  for (const CTuple& tc : question.ctuples()) {
    OUnrename(tree.root(), tc, &result.unrenamed);
  }
  for (const CTuple& tc : result.unrenamed) {
    NED_ASSIGN_OR_RETURN(OracleCTupleResult part,
                         ExplainOneCTuple(tree, eval, tctx, tc));
    result.answer.detailed.insert(part.answer.detailed.begin(),
                                  part.answer.detailed.end());
    result.answer.condensed.insert(part.answer.condensed.begin(),
                                   part.answer.condensed.end());
    result.answer.secondary.insert(part.answer.secondary.begin(),
                                   part.answer.secondary.end());
    result.per_ctuple.push_back(std::move(part));
  }
  return result;
}

}  // namespace ned
