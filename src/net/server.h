/// \file server.h
/// \brief Poll-driven HTTP/1.1 frontend over WhyNotService (docs/NETWORK.md).
///
/// One acceptor + one event-loop thread drive every connection through
/// non-blocking sockets: reads feed the incremental HttpParser, writes
/// drain bounded per-connection buffers, and /v1/whynot completions arrive
/// asynchronously from the service's worker pool via the completion
/// callback (service.h) -- a worker only copies the response into the
/// loop's completion queue and writes one wake byte, so no worker thread
/// ever blocks on a slow client. Slow clients are bounded twice over: a
/// write buffer past its cap closes the connection, and header-read /
/// keep-alive-idle timeouts (driven by the injectable Clock, so net_test
/// evicts slowloris connections with a ManualClock) evict stalled ones.
///
/// Endpoints:
///   POST /v1/whynot  -- JSON wire protocol (net/wire.h); async completion
///   GET  /metrics    -- Prometheus exposition of the service registry
///   GET  /healthz    -- liveness (200 while the loop runs)
///   GET  /readyz     -- readiness; flips 503 once BeginDrain() is called
///
/// Status mapping: OK -> 200; kUnavailable -> 503 with both `Retry-After`
/// (whole seconds, ceiled) and `Retry-After-Ms` (exact) from the service's
/// suggested backoff; kDeadlineExceeded -> 504; kNotFound -> 404; request
/// errors -> 400; anything else -> 500.

#ifndef NED_NET_SERVER_H_
#define NED_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/timer.h"
#include "net/http.h"
#include "service/service.h"

namespace ned::net {

/// Sizing and policy knobs for one server instance.
struct ServerOptions {
  /// Listen address. Loopback by default: the frontend is an edge for
  /// trusted networks, binding wider is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  int port = 0;
  int backlog = 128;
  /// Open-connection cap; accepts beyond it are closed immediately.
  size_t max_connections = 256;
  /// Parser limits (request line / header section / body).
  HttpLimits limits;
  /// Keep-alive connections idle (no request in progress) longer than this
  /// are evicted silently.
  int64_t idle_timeout_ms = 30'000;
  /// Slowloris bound: a request whose first byte arrived but which has not
  /// completed within this window gets a 408 and the connection closes.
  int64_t header_timeout_ms = 5'000;
  /// Per-connection pending-write cap; exceeding it (a slow or stalled
  /// reader) closes the connection rather than growing the buffer.
  size_t max_write_buffer_bytes = 4u << 20;
  /// Event-loop tick in *real* milliseconds: the upper bound on how stale a
  /// Clock-driven timeout decision can be. Timeout *positions* come from
  /// `clock`, so ManualClock tests get exact eviction thresholds.
  int poll_interval_ms = 10;
  /// Time source for the timeouts above; nullptr = real steady clock.
  const Clock* clock = nullptr;
};

/// The HTTP frontend. Start() binds and spawns the loop thread; Stop()
/// closes everything and joins. Thread-safe: BeginDrain/SetReady/port may
/// be called from any thread.
class HttpServer {
 public:
  HttpServer(WhyNotService* service, ServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the event loop. Fails (kUnavailable) when
  /// the address cannot be bound.
  Status Start();

  /// Closes the listener and every connection, then joins the loop thread.
  /// Responses still in flight inside the service resolve against the
  /// (detached) completion queue and are dropped -- call BeginDrain and
  /// wait for quiesce first for a graceful stop. Idempotent.
  void Stop();

  /// Drain step 1 (see docs/NETWORK.md): /readyz flips to 503 and new
  /// connections are refused (accepted, then closed). Established
  /// connections keep being served so in-flight requests complete.
  void BeginDrain();

  /// Readiness toggle backing /readyz (BeginDrain() implies false).
  void SetReady(bool ready);
  bool ready() const { return ready_.load(std::memory_order_relaxed); }

  /// Bound port (valid after Start(); the ephemeral-port reader for tests).
  int port() const { return port_; }

  /// Open connections right now (loop-thread maintained gauge mirror).
  size_t open_connections() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> ready_{true};
  int port_ = 0;
};

}  // namespace ned::net

#endif  // NED_NET_SERVER_H_
