#include "net/wire.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/strings.h"

namespace ned::net {

namespace {

using json::Value;

// ---------------------------------------------------------------------------
// Writing helpers. Rendering is deterministic: fixed field order, no
// whitespace variation, shared escaping via json::AppendEscaped.
// ---------------------------------------------------------------------------

void AppendKey(std::string* out, std::string_view key, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":";
}

void AppendStringField(std::string* out, std::string_view key,
                       std::string_view value, bool* first) {
  AppendKey(out, key, first);
  *out += '"';
  json::AppendEscaped(out, value);
  *out += '"';
}

void AppendIntField(std::string* out, std::string_view key, int64_t value,
                    bool* first) {
  AppendKey(out, key, first);
  *out += std::to_string(value);
}

void AppendUintField(std::string* out, std::string_view key, uint64_t value,
                     bool* first) {
  AppendKey(out, key, first);
  *out += std::to_string(value);
}

void AppendBoolField(std::string* out, std::string_view key, bool value,
                     bool* first) {
  AppendKey(out, key, first);
  *out += value ? "true" : "false";
}

void AppendDoubleField(std::string* out, std::string_view key, double value,
                       bool* first) {
  AppendKey(out, key, first);
  json::AppendDouble(out, value);
}

void AppendStringArrayField(std::string* out, std::string_view key,
                            const std::vector<std::string>& values,
                            bool* first) {
  AppendKey(out, key, first);
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ',';
    *out += '"';
    json::AppendEscaped(out, values[i]);
    *out += '"';
  }
  *out += ']';
}

/// Renders a relational value as a JSON scalar. The type split is exact:
/// kInt renders as a JSON integer, kDouble always as a JSON number with a
/// fractional/exponent form (AppendDouble), so the reader can reconstruct
/// the original ValueType.
void AppendRelValue(std::string* out, const ned::Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      *out += "null";
      return;
    case ValueType::kInt:
      *out += std::to_string(v.as_int());
      return;
    case ValueType::kDouble: {
      // An integral double ("25" after %.17g) would parse back as kInt;
      // force a ".0" so the wire preserves the type tag.
      std::string num;
      json::AppendDouble(&num, v.as_double());
      if (num.find_first_of(".eEn") == std::string::npos) num += ".0";
      *out += num;
      return;
    }
    case ValueType::kString:
      *out += '"';
      json::AppendEscaped(out, v.as_string());
      *out += '"';
      return;
  }
  *out += "null";
}

// ---------------------------------------------------------------------------
// Reading helpers. Schema errors name the offending field -- a client
// debugging a 400 should not have to bisect its body.
// ---------------------------------------------------------------------------

Status UnknownField(std::string_view context, const std::string& key) {
  return Status::InvalidArgument(
      StrCat("unknown field \"", key, "\" in ", context));
}

Status WrongType(std::string_view field, std::string_view want) {
  return Status::InvalidArgument(StrCat("field \"", field, "\" must be ", want));
}

Result<std::string> ReadString(const Value& v, std::string_view field) {
  if (!v.is_string()) return WrongType(field, "a string");
  return v.as_string();
}

Result<int64_t> ReadInt(const Value& v, std::string_view field) {
  if (!v.is_int()) return WrongType(field, "an integer");
  return v.as_int();
}

Result<uint64_t> ReadUint(const Value& v, std::string_view field) {
  if (!v.is_int() || v.as_int() < 0) {
    return WrongType(field, "a non-negative integer");
  }
  return static_cast<uint64_t>(v.as_int());
}

Result<bool> ReadBool(const Value& v, std::string_view field) {
  if (!v.is_bool()) return WrongType(field, "a boolean");
  return v.as_bool();
}

Result<double> ReadDouble(const Value& v, std::string_view field) {
  if (!v.is_number()) return WrongType(field, "a number");
  return v.as_double();
}

Result<std::vector<std::string>> ReadStringArray(const Value& v,
                                                 std::string_view field) {
  if (!v.is_array()) return WrongType(field, "an array of strings");
  std::vector<std::string> out;
  out.reserve(v.as_array().size());
  for (const Value& item : v.as_array()) {
    if (!item.is_string()) return WrongType(field, "an array of strings");
    out.push_back(item.as_string());
  }
  return out;
}

Result<ned::Value> ReadRelValue(const Value& v, std::string_view field) {
  switch (v.type()) {
    case Value::Type::kNull:
      return ned::Value::Null();
    case Value::Type::kInt:
      return ned::Value::Int(v.as_int());
    case Value::Type::kDouble:
      return ned::Value::Real(v.as_double());
    case Value::Type::kString:
      return ned::Value::Str(v.as_string());
    default:
      return WrongType(field, "a scalar (null, number or string)");
  }
}

Result<CompareOp> CompareOpFromSymbol(const std::string& symbol) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    if (symbol == CompareOpSymbol(op)) return op;
  }
  return Status::InvalidArgument(
      StrCat("unknown comparison operator \"", symbol, "\""));
}

Result<Priority> PriorityFromName(const std::string& name) {
  for (Priority p :
       {Priority::kInteractive, Priority::kBatch, Priority::kBackground}) {
    if (name == PriorityName(p)) return p;
  }
  return Status::InvalidArgument(StrCat("unknown priority \"", name, "\""));
}

// ---------------------------------------------------------------------------
// Question codec.
// ---------------------------------------------------------------------------

void AppendQuestion(std::string* out, const WhyNotQuestion& question) {
  *out += '[';
  bool first_tc = true;
  for (const CTuple& tc : question.ctuples()) {
    if (!first_tc) *out += ',';
    first_tc = false;
    *out += "{\"fields\":[";
    bool first_f = true;
    for (const auto& [attr, cv] : tc.fields()) {
      if (!first_f) *out += ',';
      first_f = false;
      *out += "{\"attr\":\"";
      json::AppendEscaped(out, attr.FullName());
      *out += "\",";
      if (cv.is_var) {
        *out += "\"var\":\"";
        json::AppendEscaped(out, cv.var);
        *out += '"';
      } else {
        *out += "\"const\":";
        AppendRelValue(out, cv.constant);
      }
      *out += '}';
    }
    *out += ']';
    if (!tc.cond().empty()) {
      *out += ",\"where\":[";
      bool first_p = true;
      for (const CPred& pred : tc.cond()) {
        if (!first_p) *out += ',';
        first_p = false;
        *out += "{\"var\":\"";
        json::AppendEscaped(out, pred.lhs_var);
        *out += "\",\"op\":\"";
        *out += CompareOpSymbol(pred.op);
        *out += "\",";
        if (pred.rhs_is_var) {
          *out += "\"var2\":\"";
          json::AppendEscaped(out, pred.rhs_var);
          *out += '"';
        } else {
          *out += "\"value\":";
          AppendRelValue(out, pred.rhs_const);
        }
        *out += '}';
      }
      *out += ']';
    }
    *out += '}';
  }
  *out += ']';
}

Result<CPred> ParsePred(const Value& v) {
  if (!v.is_object()) return WrongType("question[].where[]", "an object");
  CPred pred;
  bool have_var = false, have_op = false, have_rhs = false;
  for (const auto& [key, member] : v.as_object()) {
    if (key == "var") {
      NED_ASSIGN_OR_RETURN(pred.lhs_var, ReadString(member, "where[].var"));
      have_var = true;
    } else if (key == "op") {
      NED_ASSIGN_OR_RETURN(std::string symbol,
                           ReadString(member, "where[].op"));
      NED_ASSIGN_OR_RETURN(pred.op, CompareOpFromSymbol(symbol));
      have_op = true;
    } else if (key == "value") {
      if (have_rhs) {
        return Status::InvalidArgument(
            "where[] must have exactly one of \"value\" / \"var2\"");
      }
      NED_ASSIGN_OR_RETURN(pred.rhs_const,
                           ReadRelValue(member, "where[].value"));
      pred.rhs_is_var = false;
      have_rhs = true;
    } else if (key == "var2") {
      if (have_rhs) {
        return Status::InvalidArgument(
            "where[] must have exactly one of \"value\" / \"var2\"");
      }
      NED_ASSIGN_OR_RETURN(pred.rhs_var, ReadString(member, "where[].var2"));
      pred.rhs_is_var = true;
      have_rhs = true;
    } else {
      return UnknownField("question[].where[]", key);
    }
  }
  if (!have_var || !have_op || !have_rhs) {
    return Status::InvalidArgument(
        "where[] needs \"var\", \"op\" and one of \"value\" / \"var2\"");
  }
  return pred;
}

Result<CTuple> ParseCTuple(const Value& v) {
  if (!v.is_object()) return WrongType("question[]", "an object");
  CTuple tc;
  bool have_fields = false;
  for (const auto& [key, member] : v.as_object()) {
    if (key == "fields") {
      if (!member.is_array()) return WrongType("question[].fields", "an array");
      for (const Value& field : member.as_array()) {
        if (!field.is_object()) {
          return WrongType("question[].fields[]", "an object");
        }
        Attribute attr;
        CValue cv;
        bool have_attr = false, have_value = false;
        for (const auto& [fkey, fmember] : field.as_object()) {
          if (fkey == "attr") {
            NED_ASSIGN_OR_RETURN(std::string dotted,
                                 ReadString(fmember, "fields[].attr"));
            attr = Attribute::Parse(dotted);
            have_attr = true;
          } else if (fkey == "const") {
            if (have_value) {
              return Status::InvalidArgument(
                  "fields[] must have exactly one of \"const\" / \"var\"");
            }
            NED_ASSIGN_OR_RETURN(ned::Value constant,
                                 ReadRelValue(fmember, "fields[].const"));
            cv = CValue::Const(std::move(constant));
            have_value = true;
          } else if (fkey == "var") {
            if (have_value) {
              return Status::InvalidArgument(
                  "fields[] must have exactly one of \"const\" / \"var\"");
            }
            NED_ASSIGN_OR_RETURN(std::string var,
                                 ReadString(fmember, "fields[].var"));
            cv = CValue::Var(std::move(var));
            have_value = true;
          } else {
            return UnknownField("question[].fields[]", fkey);
          }
        }
        if (!have_attr || !have_value) {
          return Status::InvalidArgument(
              "fields[] needs \"attr\" and one of \"const\" / \"var\"");
        }
        tc.AddField(std::move(attr), std::move(cv));
      }
      have_fields = true;
    } else if (key == "where") {
      if (!member.is_array()) return WrongType("question[].where", "an array");
      for (const Value& pred : member.as_array()) {
        NED_ASSIGN_OR_RETURN(CPred p, ParsePred(pred));
        tc.Where(std::move(p));
      }
    } else {
      return UnknownField("question[]", key);
    }
  }
  if (!have_fields || tc.empty()) {
    return Status::InvalidArgument(
        "question[] c-tuple needs a non-empty \"fields\" array");
  }
  return tc;
}

Result<WhyNotQuestion> ParseQuestion(const Value& v) {
  if (!v.is_array()) return WrongType("question", "an array of c-tuples");
  WhyNotQuestion question;
  for (const Value& tc : v.as_array()) {
    NED_ASSIGN_OR_RETURN(CTuple parsed, ParseCTuple(tc));
    question.AddCTuple(std::move(parsed));
  }
  if (question.empty()) {
    return Status::InvalidArgument("question must not be empty");
  }
  return question;
}

// ---------------------------------------------------------------------------
// AnswerSummary codec.
// ---------------------------------------------------------------------------

void AppendAnswer(std::string* out, const AnswerSummary& answer) {
  *out += '{';
  bool first = true;
  AppendStringArrayField(out, "detailed", answer.detailed, &first);
  AppendStringArrayField(out, "condensed", answer.condensed, &first);
  AppendStringArrayField(out, "secondary", answer.secondary, &first);
  AppendUintField(out, "dir_total", answer.dir_total, &first);
  AppendUintField(out, "indir_total", answer.indir_total, &first);
  AppendUintField(out, "survivors_at_root", answer.survivors_at_root, &first);
  AppendBoolField(out, "complete", answer.complete, &first);
  AppendStringField(out, "tripped", StatusCodeName(answer.tripped), &first);
  AppendStringField(out, "completeness", answer.completeness, &first);
  AppendUintField(out, "subtree_cache_hits", answer.subtree_cache_hits,
                  &first);
  AppendUintField(out, "subtree_cache_misses", answer.subtree_cache_misses,
                  &first);
  AppendIntField(out, "degradation_level", answer.degradation_level, &first);
  AppendStringField(out, "degradation", answer.degradation, &first);
  *out += '}';
}

Result<AnswerSummary> ParseAnswer(const Value& v) {
  if (!v.is_object()) return WrongType("answer", "an object");
  AnswerSummary answer;
  for (const auto& [key, member] : v.as_object()) {
    if (key == "detailed") {
      NED_ASSIGN_OR_RETURN(answer.detailed,
                           ReadStringArray(member, "answer.detailed"));
    } else if (key == "condensed") {
      NED_ASSIGN_OR_RETURN(answer.condensed,
                           ReadStringArray(member, "answer.condensed"));
    } else if (key == "secondary") {
      NED_ASSIGN_OR_RETURN(answer.secondary,
                           ReadStringArray(member, "answer.secondary"));
    } else if (key == "dir_total") {
      NED_ASSIGN_OR_RETURN(answer.dir_total,
                           ReadUint(member, "answer.dir_total"));
    } else if (key == "indir_total") {
      NED_ASSIGN_OR_RETURN(answer.indir_total,
                           ReadUint(member, "answer.indir_total"));
    } else if (key == "survivors_at_root") {
      NED_ASSIGN_OR_RETURN(answer.survivors_at_root,
                           ReadUint(member, "answer.survivors_at_root"));
    } else if (key == "complete") {
      NED_ASSIGN_OR_RETURN(answer.complete,
                           ReadBool(member, "answer.complete"));
    } else if (key == "tripped") {
      NED_ASSIGN_OR_RETURN(std::string name,
                           ReadString(member, "answer.tripped"));
      answer.tripped = StatusCodeFromName(name);
    } else if (key == "completeness") {
      NED_ASSIGN_OR_RETURN(answer.completeness,
                           ReadString(member, "answer.completeness"));
    } else if (key == "subtree_cache_hits") {
      NED_ASSIGN_OR_RETURN(answer.subtree_cache_hits,
                           ReadUint(member, "answer.subtree_cache_hits"));
    } else if (key == "subtree_cache_misses") {
      NED_ASSIGN_OR_RETURN(answer.subtree_cache_misses,
                           ReadUint(member, "answer.subtree_cache_misses"));
    } else if (key == "degradation_level") {
      NED_ASSIGN_OR_RETURN(int64_t level,
                           ReadInt(member, "answer.degradation_level"));
      answer.degradation_level = static_cast<int>(level);
    } else if (key == "degradation") {
      NED_ASSIGN_OR_RETURN(answer.degradation,
                           ReadString(member, "answer.degradation"));
    } else {
      return UnknownField("answer", key);
    }
  }
  return answer;
}

}  // namespace

// ---------------------------------------------------------------------------
// Request codec.
// ---------------------------------------------------------------------------

std::string RenderWhyNotRequestJson(const WhyNotRequest& request) {
  std::string out = "{";
  bool first = true;
  AppendStringField(&out, "db", request.db_name, &first);
  AppendStringField(&out, "sql", request.sql, &first);
  AppendKey(&out, "question", &first);
  AppendQuestion(&out, request.question);
  if (!request.key.empty()) AppendStringField(&out, "key", request.key, &first);
  if (!request.client_id.empty()) {
    AppendStringField(&out, "client_id", request.client_id, &first);
  }
  AppendStringField(&out, "priority", PriorityName(request.priority), &first);
  if (request.deadline_ms != 0) {
    AppendIntField(&out, "deadline_ms", request.deadline_ms, &first);
  }
  if (request.row_budget != 0) {
    AppendUintField(&out, "row_budget", request.row_budget, &first);
  }
  if (request.memory_budget != 0) {
    AppendUintField(&out, "memory_budget", request.memory_budget, &first);
  }
  if (request.seed != 0) AppendUintField(&out, "seed", request.seed, &first);
  if (request.threads != 0) {
    AppendIntField(&out, "threads", request.threads, &first);
  }
  if (request.bypass_answer_cache) {
    AppendBoolField(&out, "bypass_answer_cache", true, &first);
  }
  if (request.collect_trace) {
    AppendBoolField(&out, "collect_trace", true, &first);
  }
  const NedExplainOptions defaults;
  const NedExplainOptions& eng = request.engine_options;
  if (eng.enable_early_termination != defaults.enable_early_termination ||
      eng.compute_secondary != defaults.compute_secondary ||
      eng.keep_tabq_dump != defaults.keep_tabq_dump) {
    AppendKey(&out, "engine", &first);
    out += '{';
    bool efirst = true;
    AppendBoolField(&out, "early_termination", eng.enable_early_termination,
                    &efirst);
    AppendBoolField(&out, "secondary", eng.compute_secondary, &efirst);
    AppendBoolField(&out, "tabq_dump", eng.keep_tabq_dump, &efirst);
    out += '}';
  }
  out += '}';
  return out;
}

Result<WhyNotRequest> ParseWhyNotRequestJson(std::string_view body) {
  NED_ASSIGN_OR_RETURN(Value doc, json::Parse(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  WhyNotRequest request;
  bool have_db = false, have_sql = false, have_question = false;
  for (const auto& [key, member] : doc.as_object()) {
    if (key == "db") {
      NED_ASSIGN_OR_RETURN(request.db_name, ReadString(member, "db"));
      have_db = true;
    } else if (key == "sql") {
      NED_ASSIGN_OR_RETURN(request.sql, ReadString(member, "sql"));
      have_sql = true;
    } else if (key == "question") {
      NED_ASSIGN_OR_RETURN(request.question, ParseQuestion(member));
      have_question = true;
    } else if (key == "key") {
      NED_ASSIGN_OR_RETURN(request.key, ReadString(member, "key"));
    } else if (key == "client_id") {
      NED_ASSIGN_OR_RETURN(request.client_id, ReadString(member, "client_id"));
    } else if (key == "priority") {
      NED_ASSIGN_OR_RETURN(std::string name, ReadString(member, "priority"));
      NED_ASSIGN_OR_RETURN(request.priority, PriorityFromName(name));
    } else if (key == "deadline_ms") {
      NED_ASSIGN_OR_RETURN(request.deadline_ms,
                           ReadInt(member, "deadline_ms"));
      if (request.deadline_ms < 0) {
        return WrongType("deadline_ms", "a non-negative integer");
      }
    } else if (key == "row_budget") {
      NED_ASSIGN_OR_RETURN(uint64_t budget, ReadUint(member, "row_budget"));
      request.row_budget = static_cast<size_t>(budget);
    } else if (key == "memory_budget") {
      NED_ASSIGN_OR_RETURN(uint64_t budget, ReadUint(member, "memory_budget"));
      request.memory_budget = static_cast<size_t>(budget);
    } else if (key == "seed") {
      NED_ASSIGN_OR_RETURN(request.seed, ReadUint(member, "seed"));
    } else if (key == "threads") {
      NED_ASSIGN_OR_RETURN(int64_t threads, ReadInt(member, "threads"));
      if (threads < 0) return WrongType("threads", "a non-negative integer");
      request.threads = static_cast<int>(threads);
    } else if (key == "bypass_answer_cache") {
      NED_ASSIGN_OR_RETURN(request.bypass_answer_cache,
                           ReadBool(member, "bypass_answer_cache"));
    } else if (key == "collect_trace") {
      NED_ASSIGN_OR_RETURN(request.collect_trace,
                           ReadBool(member, "collect_trace"));
    } else if (key == "engine") {
      if (!member.is_object()) return WrongType("engine", "an object");
      for (const auto& [ekey, emember] : member.as_object()) {
        if (ekey == "early_termination") {
          NED_ASSIGN_OR_RETURN(request.engine_options.enable_early_termination,
                               ReadBool(emember, "engine.early_termination"));
        } else if (ekey == "secondary") {
          NED_ASSIGN_OR_RETURN(request.engine_options.compute_secondary,
                               ReadBool(emember, "engine.secondary"));
        } else if (ekey == "tabq_dump") {
          NED_ASSIGN_OR_RETURN(request.engine_options.keep_tabq_dump,
                               ReadBool(emember, "engine.tabq_dump"));
        } else {
          return UnknownField("engine", ekey);
        }
      }
    } else {
      return UnknownField("request", key);
    }
  }
  if (!have_db) return Status::InvalidArgument("missing required field \"db\"");
  if (!have_sql) {
    return Status::InvalidArgument("missing required field \"sql\"");
  }
  if (!have_question) {
    return Status::InvalidArgument("missing required field \"question\"");
  }
  return request;
}

// ---------------------------------------------------------------------------
// Response codec.
// ---------------------------------------------------------------------------

std::string RenderWhyNotResponseJson(const WhyNotResponse& response,
                                     bool deduped) {
  std::string out = "{";
  bool first = true;
  AppendStringField(&out, "key", response.key, &first);
  AppendStringField(&out, "status", StatusCodeName(response.status.code()),
                    &first);
  if (!response.status.message().empty()) {
    AppendStringField(&out, "message", response.status.message(), &first);
  }
  AppendKey(&out, "answer", &first);
  AppendAnswer(&out, response.answer);
  AppendUintField(&out, "snapshot_version", response.snapshot_version, &first);
  AppendIntField(&out, "attempt", response.attempt, &first);
  AppendDoubleField(&out, "queue_ms", response.queue_ms, &first);
  AppendDoubleField(&out, "exec_ms", response.exec_ms, &first);
  if (response.retry_after_ms != 0) {
    AppendIntField(&out, "retry_after_ms", response.retry_after_ms, &first);
  }
  if (response.served_from_answer_cache) {
    AppendBoolField(&out, "served_from_answer_cache", true, &first);
  }
  if (response.served_from_answer_store) {
    AppendBoolField(&out, "served_from_answer_store", true, &first);
  }
  if (response.expired_in_queue) {
    AppendBoolField(&out, "expired_in_queue", true, &first);
  }
  if (response.breaker_fast_fail) {
    AppendBoolField(&out, "breaker_fast_fail", true, &first);
  }
  if (deduped) AppendBoolField(&out, "deduped", true, &first);
  if (response.trace != nullptr) {
    AppendStringField(&out, "trace", response.trace->RenderStructure(),
                      &first);
  }
  out += '}';
  return out;
}

std::string RenderSubmissionErrorJson(const Status& status,
                                      int64_t retry_after_ms,
                                      bool breaker_fast_fail) {
  std::string out = "{";
  bool first = true;
  AppendStringField(&out, "status", StatusCodeName(status.code()), &first);
  if (!status.message().empty()) {
    AppendStringField(&out, "message", status.message(), &first);
  }
  if (retry_after_ms != 0) {
    AppendIntField(&out, "retry_after_ms", retry_after_ms, &first);
  }
  if (breaker_fast_fail) {
    AppendBoolField(&out, "breaker_fast_fail", true, &first);
  }
  out += '}';
  return out;
}

Result<WireResponse> ParseWhyNotResponseJson(std::string_view body) {
  NED_ASSIGN_OR_RETURN(Value doc, json::Parse(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("response body must be a JSON object");
  }
  WireResponse response;
  for (const auto& [key, member] : doc.as_object()) {
    if (key == "key") {
      NED_ASSIGN_OR_RETURN(response.key, ReadString(member, "key"));
    } else if (key == "status") {
      NED_ASSIGN_OR_RETURN(std::string name, ReadString(member, "status"));
      response.code = StatusCodeFromName(name);
    } else if (key == "message") {
      NED_ASSIGN_OR_RETURN(response.message, ReadString(member, "message"));
    } else if (key == "answer") {
      NED_ASSIGN_OR_RETURN(response.answer, ParseAnswer(member));
    } else if (key == "snapshot_version") {
      NED_ASSIGN_OR_RETURN(response.snapshot_version,
                           ReadUint(member, "snapshot_version"));
    } else if (key == "attempt") {
      NED_ASSIGN_OR_RETURN(int64_t attempt, ReadInt(member, "attempt"));
      response.attempt = static_cast<int>(attempt);
    } else if (key == "queue_ms") {
      NED_ASSIGN_OR_RETURN(response.queue_ms, ReadDouble(member, "queue_ms"));
    } else if (key == "exec_ms") {
      NED_ASSIGN_OR_RETURN(response.exec_ms, ReadDouble(member, "exec_ms"));
    } else if (key == "retry_after_ms") {
      NED_ASSIGN_OR_RETURN(response.retry_after_ms,
                           ReadInt(member, "retry_after_ms"));
    } else if (key == "served_from_answer_cache") {
      NED_ASSIGN_OR_RETURN(response.served_from_answer_cache,
                           ReadBool(member, "served_from_answer_cache"));
    } else if (key == "served_from_answer_store") {
      NED_ASSIGN_OR_RETURN(response.served_from_answer_store,
                           ReadBool(member, "served_from_answer_store"));
    } else if (key == "expired_in_queue") {
      NED_ASSIGN_OR_RETURN(response.expired_in_queue,
                           ReadBool(member, "expired_in_queue"));
    } else if (key == "breaker_fast_fail") {
      NED_ASSIGN_OR_RETURN(response.breaker_fast_fail,
                           ReadBool(member, "breaker_fast_fail"));
    } else if (key == "deduped") {
      NED_ASSIGN_OR_RETURN(response.deduped, ReadBool(member, "deduped"));
    } else if (key == "trace") {
      NED_ASSIGN_OR_RETURN(response.trace_structure,
                           ReadString(member, "trace"));
    } else {
      return UnknownField("response", key);
    }
  }
  return response;
}

StatusCode StatusCodeFromName(std::string_view name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kUnsupported, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
        StatusCode::kCancelled, StatusCode::kUnavailable}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kUnsupported:
      return 400;
    default:
      return 500;
  }
}

}  // namespace ned::net
