/// \file wire.h
/// \brief JSON wire protocol of the HTTP frontend (docs/NETWORK.md).
///
/// One request body = one WhyNotRequest; one response body = one
/// WhyNotResponse. The codec is symmetric on purpose: the server renders
/// with the same field names the client parser reads, so ned_loadgen and
/// net_test can decode a response off the socket and compare the
/// AnswerSummary byte-for-byte against an in-process Submit. All escaping
/// goes through common/json.h -- the wire shares the exposition layer's
/// single escaping implementation.
///
/// Request schema (POST /v1/whynot):
///
///   {
///     "db": "crime",                      // required
///     "sql": "SELECT ...",                // required
///     "question": [                       // required: disjunction of c-tuples
///       {"fields": [{"attr": "P.name", "const": "Homer"},
///                   {"attr": "ap", "var": "x1"}],
///        "where":  [{"var": "x1", "op": ">", "value": 25},
///                   {"var": "x1", "op": "!=", "var2": "x2"}]}
///     ],
///     "key": "...",                       // optional idempotency key
///     "client_id": "...",                 // optional fair-share identity
///     "priority": "interactive",          // interactive | batch | background
///     "deadline_ms": 2000, "row_budget": 0, "memory_budget": 0,
///     "seed": 0, "threads": 0,
///     "bypass_answer_cache": false, "collect_trace": false,
///     "engine": {"early_termination": true, "secondary": true,
///                "tabq_dump": false}
///   }
///
/// `priority` and `key` may instead arrive as the `X-Ned-Priority` /
/// `X-Ned-Idempotency-Key` headers (the server layers those on top of this
/// codec; headers win over body fields).
///
/// Unknown top-level fields are rejected (kInvalidArgument) rather than
/// ignored: a typoed budget knob silently defaulting is worse than a 400.

#ifndef NED_NET_WIRE_H_
#define NED_NET_WIRE_H_

#include <string>
#include <string_view>

#include "common/json.h"
#include "common/status.h"
#include "service/service.h"

namespace ned::net {

/// Parses a /v1/whynot request body. Errors are kInvalidArgument (schema
/// violations) or kParseError (not JSON); both map to HTTP 400.
Result<WhyNotRequest> ParseWhyNotRequestJson(std::string_view body);

/// Renders a request back to its wire form (loadgen, tests, debugging).
/// ParseWhyNotRequestJson(RenderWhyNotRequestJson(r)) reproduces r exactly
/// for every field the schema carries.
std::string RenderWhyNotRequestJson(const WhyNotRequest& request);

/// Renders the response body for a resolved WhyNotResponse. `deduped` comes
/// from the Submission (it is an admission-side fact the response struct
/// does not carry). When `response.trace` is set the rendered structure is
/// included under "trace".
std::string RenderWhyNotResponseJson(const WhyNotResponse& response,
                                     bool deduped);

/// Renders the response body for a submission resolved synchronously
/// without a WhyNotResponse: sheds (kUnavailable + retry_after_ms),
/// breaker fast-fails and permanent rejections.
std::string RenderSubmissionErrorJson(const Status& status,
                                      int64_t retry_after_ms,
                                      bool breaker_fast_fail);

/// Client-side view of a response body: WhyNotResponse minus the in-process
/// trace pointer (the wire carries the rendered structure instead).
struct WireResponse {
  std::string key;
  StatusCode code = StatusCode::kOk;
  std::string message;
  AnswerSummary answer;
  uint64_t snapshot_version = 0;
  int attempt = 0;
  double queue_ms = 0;
  double exec_ms = 0;
  int64_t retry_after_ms = 0;
  bool served_from_answer_cache = false;
  bool served_from_answer_store = false;
  bool expired_in_queue = false;
  bool breaker_fast_fail = false;
  bool deduped = false;
  /// Trace structure rendering ("" when the request did not ask for one).
  std::string trace_structure;
};

/// Parses a response body (either render form above).
Result<WireResponse> ParseWhyNotResponseJson(std::string_view body);

/// Inverse of StatusCodeName(); kInternal for unknown names is deliberate
/// (an unrecognized code from a newer server should not crash a client).
StatusCode StatusCodeFromName(std::string_view name);

/// HTTP status the frontend maps a service StatusCode onto: OK -> 200,
/// kUnavailable -> 503, kDeadlineExceeded -> 504, kNotFound -> 404, the
/// request-error family (kInvalidArgument/kParseError/kTypeError/
/// kUnsupported) -> 400, everything else -> 500.
int HttpStatusForCode(StatusCode code);

}  // namespace ned::net

#endif  // NED_NET_WIRE_H_
