/// \file http.h
/// \brief Incremental HTTP/1.1 request parser + response rendering.
///
/// The parser is the trust boundary of the serving edge: it consumes bytes
/// exactly as they arrive off a non-blocking socket (any split, any pace)
/// and can only ever end in one of three states -- a complete request, a
/// diagnosable client error (400 malformed / 413 oversized), or "need more
/// bytes". It never throws, never crashes, and never reads past the buffer:
/// net_test replays every request split at every byte boundary and under
/// seeded bit-flips to pin exactly that.
///
/// Scope: request line + headers + Content-Length bodies -- what the JSON
/// wire protocol needs. Transfer-Encoding, multi-line header folding and
/// multiple Content-Length values are rejected as 400 rather than guessed
/// at (request smuggling hygiene).

#ifndef NED_NET_HTTP_H_
#define NED_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ned::net {

/// One parsed request. Header names are lower-cased at parse time
/// (HTTP headers are case-insensitive); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (verbatim, case-sensitive)
  std::string target;   ///< "/v1/whynot"
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of `name` (lower-case), or "" when absent.
  std::string_view Header(std::string_view name) const;
  bool HasHeader(std::string_view name) const;
  /// Keep-alive resolution: HTTP/1.1 defaults to keep-alive unless
  /// "Connection: close"; HTTP/1.0 requires "Connection: keep-alive".
  bool KeepAlive() const;
};

/// Parser size limits. Oversized input is a 413, never a buffer growth.
struct HttpLimits {
  size_t max_request_line_bytes = 8 * 1024;
  /// Whole header section (request line included).
  size_t max_header_bytes = 32 * 1024;
  size_t max_body_bytes = 1024 * 1024;
};

/// Incremental parser: feed bytes as they arrive, observe state.
class HttpParser {
 public:
  enum class State {
    kRequestLine,  ///< reading the request line
    kHeaders,      ///< reading header lines
    kBody,         ///< reading a Content-Length body
    kComplete,     ///< request() is valid; stops consuming (pipelining)
    kError,        ///< error_status() is 400 or 413; stops consuming
  };

  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Consumes from `data` until complete, error, or bytes run out; returns
  /// how many bytes were consumed. Once kComplete, unconsumed bytes belong
  /// to the *next* request (keep-alive pipelining) -- call Reset() after
  /// handling and feed them again.
  size_t Feed(std::string_view data);

  State state() const { return state_; }
  bool done() const {
    return state_ == State::kComplete || state_ == State::kError;
  }
  /// HTTP status for kError: 400 (malformed) or 413 (too large).
  int error_status() const { return error_status_; }
  /// Human-readable error detail (for logs; never echoed raw to clients).
  const std::string& error_detail() const { return error_detail_; }
  const HttpRequest& request() const { return request_; }
  /// True once any byte of the current request has been consumed -- the
  /// slowloris timeout only arms on connections with a request in progress.
  bool started() const { return started_; }

  /// Ready for the next request on the same connection.
  void Reset();

 private:
  void Fail(int status, std::string detail);
  bool FinishRequestLine(std::string_view line);
  bool FinishHeaderLine(std::string_view line);
  /// Validates the header section once blank-line terminated: resolves
  /// Content-Length, rejects smuggling vectors.
  void FinishHeaders();

  HttpLimits limits_;
  State state_ = State::kRequestLine;
  int error_status_ = 0;
  std::string error_detail_;
  HttpRequest request_;
  std::string line_;           ///< current partial line
  size_t header_bytes_ = 0;    ///< header-section bytes consumed so far
  size_t content_length_ = 0;  ///< resolved by FinishHeaders
  bool started_ = false;
};

/// Renders a response head + body. `status` drives the reason phrase;
/// `extra_headers` are emitted verbatim (name, value) pairs.
std::string RenderHttpResponse(
    int status, std::string_view content_type, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers = {},
    bool keep_alive = true);

/// Reason phrase for the handful of statuses this server emits.
std::string_view HttpReasonPhrase(int status);

/// Client-side view of one parsed response (ned_loadgen, net_test,
/// bench_net -- everything that talks to the server over a real socket).
struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  ///< lower-cased names
  std::string body;

  std::string_view Header(std::string_view name) const;
};

/// Tries to parse one complete response from the front of `data`
/// (status line + headers + Content-Length body). Returns the bytes
/// consumed, or 0 when more bytes are needed (read again and retry);
/// malformed input is a Status error. Keep-alive clients call this in a
/// read loop and erase the consumed prefix.
Result<size_t> ParseHttpResponse(std::string_view data, HttpResponse* out);

}  // namespace ned::net

#endif  // NED_NET_HTTP_H_
