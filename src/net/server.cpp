#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "net/wire.h"
#include "obs/expose.h"

namespace ned::net {

namespace {

/// Ceiling of a millisecond backoff in whole seconds, for the RFC-shaped
/// Retry-After header. Never 0 for a positive backoff: a client honoring
/// only whole seconds must actually wait.
int64_t CeilSeconds(int64_t ms) { return ms <= 0 ? 0 : (ms + 999) / 1000; }

/// Retry headers for a 503: spec-compliant whole seconds plus the exact
/// millisecond value (ned_loadgen obeys the precise one; sub-second
/// backoffs would otherwise round up 200x).
void AppendRetryHeaders(std::vector<std::pair<std::string, std::string>>* headers,
                        int64_t retry_after_ms) {
  if (retry_after_ms <= 0) return;
  headers->emplace_back("Retry-After", std::to_string(CeilSeconds(retry_after_ms)));
  headers->emplace_back("Retry-After-Ms", std::to_string(retry_after_ms));
}

constexpr std::string_view kJsonType = "application/json";
constexpr std::string_view kTextType = "text/plain; charset=utf-8";
/// Prometheus exposition format version tag.
constexpr std::string_view kPromType = "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

struct HttpServer::Impl {
  /// One resolved /v1/whynot response traveling worker -> event loop.
  struct Completion {
    uint64_t conn_id = 0;
    WhyNotResponse response;
  };

  /// The worker->loop handoff. shared_ptr-owned so completion callbacks
  /// captured by the service stay valid even if the server is destroyed
  /// while requests are still resolving: Stop() marks the queue closed and
  /// later callbacks drop their completions instead of touching freed
  /// server state.
  struct CompletionQueue {
    std::mutex mu;
    bool open = true;
    int wake_fd = -1;
    std::vector<Completion> items;

    void Push(Completion completion) {
      std::lock_guard<std::mutex> lock(mu);
      if (!open) return;
      items.push_back(std::move(completion));
      // One wake byte; the loop drains the pipe and the queue together.
      // EAGAIN (pipe already full of wake bytes) is fine -- a wake is
      // already pending.
      const char byte = 1;
      if (wake_fd >= 0) {
        [[maybe_unused]] ssize_t n = ::write(wake_fd, &byte, 1);
      }
    }

    std::vector<Completion> Drain() {
      std::lock_guard<std::mutex> lock(mu);
      return std::exchange(items, {});
    }

    void Close() {
      std::lock_guard<std::mutex> lock(mu);
      open = false;
      wake_fd = -1;
      items.clear();
    }
  };

  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    HttpParser parser;
    std::string inbuf;
    std::string outbuf;
    size_t out_off = 0;
    bool close_after_flush = false;
    /// An async /v1/whynot is outstanding: input processing pauses (keeps
    /// pipelined responses in request order) until the completion lands.
    bool awaiting_async = false;
    bool pending_deduped = false;
    bool pending_keep_alive = true;
    Clock::TimePoint last_activity;
    /// Set when the first byte of the current request arrives; the
    /// slowloris clock for this request.
    Clock::TimePoint request_start;
    bool request_timing_armed = false;

    explicit Connection(HttpLimits limits) : parser(limits) {}
  };

  WhyNotService* service = nullptr;
  ServerOptions options;
  const Clock* clock = nullptr;
  HttpServer* owner = nullptr;

  int listen_fd = -1;
  int wake_read_fd = -1;
  std::shared_ptr<CompletionQueue> completions = std::make_shared<CompletionQueue>();
  std::thread loop;
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> accepting{true};
  std::atomic<size_t> open_count{0};

  uint64_t next_conn_id = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;

  // Net metrics, registered in the service's unified registry so one
  // /metrics scrape covers the edge and the service alike.
  obs::Counter* accepted_total = nullptr;
  obs::Counter* refused_cap = nullptr;
  obs::Counter* refused_draining = nullptr;
  obs::Counter* requests_whynot = nullptr;
  obs::Counter* requests_metrics = nullptr;
  obs::Counter* requests_health = nullptr;
  obs::Counter* parse_errors = nullptr;
  obs::Counter* timeouts_idle = nullptr;
  obs::Counter* timeouts_header = nullptr;
  obs::Counter* slow_clients = nullptr;
  obs::Gauge* open_gauge = nullptr;

  void RegisterMetrics() {
    obs::MetricsRegistry* registry = service->metrics();
    accepted_total = registry->GetCounter("ned_net_connections_accepted_total");
    refused_cap = registry->GetCounter("ned_net_connections_refused_total",
                                       {{"reason", "cap"}});
    refused_draining = registry->GetCounter(
        "ned_net_connections_refused_total", {{"reason", "draining"}});
    requests_whynot =
        registry->GetCounter("ned_net_requests_total", {{"endpoint", "whynot"}});
    requests_metrics =
        registry->GetCounter("ned_net_requests_total", {{"endpoint", "metrics"}});
    requests_health =
        registry->GetCounter("ned_net_requests_total", {{"endpoint", "health"}});
    parse_errors = registry->GetCounter("ned_net_parse_errors_total");
    timeouts_idle =
        registry->GetCounter("ned_net_timeouts_total", {{"kind", "idle"}});
    timeouts_header =
        registry->GetCounter("ned_net_timeouts_total", {{"kind", "header"}});
    slow_clients = registry->GetCounter("ned_net_slow_clients_closed_total");
    open_gauge = registry->GetGauge("ned_net_open_connections");
  }

  Status Start() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) {
      return Status::Unavailable(StrCat("socket: ", std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options.port));
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument(StrCat("bad listen host ", options.host));
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return Status::Unavailable(
          StrCat("bind ", options.host, ":", options.port, ": ",
                 std::strerror(errno)));
    }
    if (::listen(listen_fd, options.backlog) != 0) {
      return Status::Unavailable(StrCat("listen: ", std::strerror(errno)));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    owner->port_ = static_cast<int>(ntohs(bound.sin_port));
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      return Status::Unavailable(StrCat("pipe2: ", std::strerror(errno)));
    }
    wake_read_fd = pipe_fds[0];
    {
      std::lock_guard<std::mutex> lock(completions->mu);
      completions->wake_fd = pipe_fds[1];
    }
    RegisterMetrics();
    loop = std::thread([this] { Loop(); });
    return Status::OK();
  }

  void Stop() {
    if (stop_requested.exchange(true)) {
      if (loop.joinable()) loop.join();
      return;
    }
    // The wake byte routes through the queue's pipe write end.
    completions->Push(Completion{});  // conn_id 0: pure wake, dropped on drain
    if (loop.joinable()) loop.join();
    int wake_write = -1;
    {
      std::lock_guard<std::mutex> lock(completions->mu);
      wake_write = completions->wake_fd;
    }
    completions->Close();
    if (wake_write >= 0) ::close(wake_write);
    if (wake_read_fd >= 0) ::close(wake_read_fd);
    wake_read_fd = -1;
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
  }

  // -- Event loop -----------------------------------------------------------

  void Loop() {
    std::vector<pollfd> fds;
    std::vector<uint64_t> fd_conn;  // parallel to fds: conn id or 0
    while (!stop_requested.load(std::memory_order_relaxed)) {
      fds.clear();
      fd_conn.clear();
      fds.push_back({listen_fd, POLLIN, 0});
      fd_conn.push_back(0);
      fds.push_back({wake_read_fd, POLLIN, 0});
      fd_conn.push_back(0);
      for (auto& [id, conn] : conns) {
        short events = 0;
        if (!conn->awaiting_async && !conn->close_after_flush) events |= POLLIN;
        if (conn->out_off < conn->outbuf.size()) events |= POLLOUT;
        if (events == 0) events = POLLIN;  // at least detect hangup
        fds.push_back({conn->fd, events, 0});
        fd_conn.push_back(id);
      }
      ::poll(fds.data(), fds.size(), options.poll_interval_ms);
      if (stop_requested.load(std::memory_order_relaxed)) break;
      if (fds[1].revents & POLLIN) DrainWakePipe();
      DeliverCompletions();
      if (fds[0].revents & POLLIN) AcceptAll();
      for (size_t i = 2; i < fds.size(); ++i) {
        auto it = conns.find(fd_conn[i]);
        if (it == conns.end()) continue;  // closed earlier this tick
        Connection* conn = it->second.get();
        if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          // POLLHUP with readable data still pending is delivered with
          // POLLIN on Linux; by the time we see a bare hangup the peer is
          // gone either way.
          if ((fds[i].revents & POLLIN) == 0) {
            CloseConn(conn->id);
            continue;
          }
        }
        if (fds[i].revents & POLLIN) {
          if (!HandleRead(conn)) continue;  // connection closed
        }
        if (fds[i].revents & POLLOUT) TryFlush(conn);
      }
      EvictTimeouts(clock->Now());
    }
    for (auto& [id, conn] : conns) ::close(conn->fd);
    conns.clear();
    open_count.store(0, std::memory_order_relaxed);
    if (open_gauge != nullptr) open_gauge->Set(0);
  }

  void DrainWakePipe() {
    char buf[256];
    while (::read(wake_read_fd, buf, sizeof(buf)) > 0) {
    }
  }

  void DeliverCompletions() {
    for (Completion& completion : completions->Drain()) {
      auto it = conns.find(completion.conn_id);
      if (it == conns.end()) continue;  // client went away; answer is cached
      Connection* conn = it->second.get();
      const WhyNotResponse& response = completion.response;
      std::vector<std::pair<std::string, std::string>> headers;
      const int status = HttpStatusForCode(response.status.code());
      if (status == 503) AppendRetryHeaders(&headers, response.retry_after_ms);
      const bool keep = conn->pending_keep_alive;
      EnqueueResponse(conn, status, kJsonType,
                      RenderWhyNotResponseJson(response, conn->pending_deduped),
                      headers, keep);
      conn->awaiting_async = false;
      if (!keep) conn->close_after_flush = true;
      conn->last_activity = clock->Now();
      // Pipelined bytes buffered behind the async request resume here.
      ProcessInput(conn);
      if (conns.count(completion.conn_id) != 0) TryFlush(conn);
    }
  }

  void AcceptAll() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      if (!accepting.load(std::memory_order_relaxed)) {
        refused_draining->Increment();
        ::close(fd);
        continue;
      }
      if (conns.size() >= options.max_connections) {
        refused_cap->Increment();
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Connection>(options.limits);
      conn->id = next_conn_id++;
      conn->fd = fd;
      conn->last_activity = clock->Now();
      accepted_total->Increment();
      conns.emplace(conn->id, std::move(conn));
      open_count.store(conns.size(), std::memory_order_relaxed);
      open_gauge->Set(static_cast<int64_t>(conns.size()));
    }
  }

  void CloseConn(uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    ::close(it->second->fd);
    conns.erase(it);
    open_count.store(conns.size(), std::memory_order_relaxed);
    open_gauge->Set(static_cast<int64_t>(conns.size()));
  }

  /// Returns false when the connection was closed.
  bool HandleRead(Connection* conn) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->inbuf.append(buf, static_cast<size_t>(n));
        conn->last_activity = clock->Now();
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        CloseConn(conn->id);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(conn->id);
      return false;
    }
    const uint64_t id = conn->id;
    ProcessInput(conn);
    if (conns.count(id) == 0) return false;
    TryFlush(conn);
    return conns.count(id) != 0;
  }

  void ProcessInput(Connection* conn) {
    while (!conn->awaiting_async && !conn->close_after_flush &&
           !conn->inbuf.empty()) {
      const size_t consumed = conn->parser.Feed(conn->inbuf);
      conn->inbuf.erase(0, consumed);
      if (conn->parser.started() && !conn->request_timing_armed) {
        conn->request_timing_armed = true;
        conn->request_start = clock->Now();
      }
      if (conn->parser.state() == HttpParser::State::kError) {
        parse_errors->Increment();
        const int status = conn->parser.error_status();
        const Status body_status =
            status == 413
                ? Status::ResourceExhausted(conn->parser.error_detail())
                : Status::InvalidArgument(conn->parser.error_detail());
        EnqueueResponse(conn, status, kJsonType,
                        RenderSubmissionErrorJson(body_status, 0, false), {},
                        /*keep_alive=*/false);
        conn->close_after_flush = true;
        conn->inbuf.clear();
        return;
      }
      if (conn->parser.state() == HttpParser::State::kComplete) {
        conn->request_timing_armed = false;
        HandleRequest(conn, conn->parser.request());
        conn->parser.Reset();
        continue;
      }
      return;  // need more bytes
    }
  }

  void HandleRequest(Connection* conn, const HttpRequest& req) {
    const bool keep = req.KeepAlive();
    if (req.target == "/healthz" || req.target == "/readyz") {
      requests_health->Increment();
      if (req.method != "GET") {
        EnqueueMethodNotAllowed(conn, "GET", keep);
      } else if (req.target == "/healthz") {
        EnqueueResponse(conn, 200, kTextType, "ok\n", {}, keep);
      } else if (owner->ready()) {
        EnqueueResponse(conn, 200, kTextType, "ready\n", {}, keep);
      } else {
        EnqueueResponse(conn, 503, kTextType, "draining\n", {}, keep);
      }
    } else if (req.target == "/metrics") {
      requests_metrics->Increment();
      if (req.method != "GET") {
        EnqueueMethodNotAllowed(conn, "GET", keep);
      } else {
        // Collect() takes the service mutex briefly; scrapes are rare
        // relative to requests, so doing it on the loop is acceptable.
        EnqueueResponse(conn, 200, kPromType,
                        obs::FormatPrometheus(service->metrics()->Collect()),
                        {}, keep);
      }
    } else if (req.target == "/v1/whynot") {
      requests_whynot->Increment();
      if (req.method != "POST") {
        EnqueueMethodNotAllowed(conn, "POST", keep);
      } else {
        HandleWhyNot(conn, req, keep);
        return;  // response (sync error or async) already arranged
      }
    } else {
      EnqueueResponse(conn, 404, kJsonType,
                      RenderSubmissionErrorJson(
                          Status::NotFound(StrCat("no such endpoint: ",
                                                  req.target)),
                          0, false),
                      {}, keep);
    }
    if (!keep) conn->close_after_flush = true;
  }

  void HandleWhyNot(Connection* conn, const HttpRequest& req, bool keep) {
    auto parsed = ParseWhyNotRequestJson(req.body);
    if (!parsed.ok()) {
      EnqueueResponse(conn, HttpStatusForCode(parsed.status().code()),
                      kJsonType,
                      RenderSubmissionErrorJson(parsed.status(), 0, false), {},
                      keep);
      if (!keep) conn->close_after_flush = true;
      return;
    }
    WhyNotRequest request = std::move(parsed).value();
    // Headers win over body fields: a proxy can retarget priority or attach
    // an idempotency key without re-encoding the payload.
    if (std::string_view key = req.Header("x-ned-idempotency-key");
        !key.empty()) {
      request.key = std::string(key);
    }
    if (std::string_view prio = req.Header("x-ned-priority"); !prio.empty()) {
      if (prio == "interactive") {
        request.priority = Priority::kInteractive;
      } else if (prio == "batch") {
        request.priority = Priority::kBatch;
      } else if (prio == "background") {
        request.priority = Priority::kBackground;
      } else {
        EnqueueResponse(
            conn, 400, kJsonType,
            RenderSubmissionErrorJson(
                Status::InvalidArgument(
                    StrCat("unknown X-Ned-Priority \"", prio, "\"")),
                0, false),
            {}, keep);
        if (!keep) conn->close_after_flush = true;
        return;
      }
    }
    // The callback only copies the response into the loop's queue and
    // writes one wake byte -- the no-worker-ever-blocks-on-a-client rule.
    const uint64_t conn_id = conn->id;
    std::shared_ptr<CompletionQueue> queue = completions;
    WhyNotService::Submission sub = service->Submit(
        std::move(request),
        [queue, conn_id](const WhyNotResponse& response) {
          queue->Push(Completion{conn_id, response});
        });
    if (!sub.status.ok()) {
      // Shed / breaker fast-fail / permanent rejection: resolved here and
      // now, no callback will fire.
      std::vector<std::pair<std::string, std::string>> headers;
      const int status = HttpStatusForCode(sub.status.code());
      if (status == 503) AppendRetryHeaders(&headers, sub.retry_after_ms);
      EnqueueResponse(conn, status, kJsonType,
                      RenderSubmissionErrorJson(sub.status, sub.retry_after_ms,
                                                sub.breaker_fast_fail),
                      headers, keep);
      if (!keep) conn->close_after_flush = true;
      return;
    }
    // Accepted (or coalesced): the completion -- possibly already enqueued
    // by a synchronous hit -- is rendered by DeliverCompletions on this
    // thread, strictly after these flags are set.
    conn->awaiting_async = true;
    conn->pending_deduped = sub.deduped;
    conn->pending_keep_alive = keep;
  }

  void EnqueueMethodNotAllowed(Connection* conn, const char* allow, bool keep) {
    EnqueueResponse(conn, 405, kJsonType,
                    RenderSubmissionErrorJson(
                        Status::Unsupported("method not allowed"), 0, false),
                    {{"Allow", allow}}, keep);
  }

  void EnqueueResponse(Connection* conn, int status,
                       std::string_view content_type, std::string_view body,
                       std::vector<std::pair<std::string, std::string>> headers,
                       bool keep_alive) {
    conn->outbuf +=
        RenderHttpResponse(status, content_type, body, headers, keep_alive);
  }

  void TryFlush(Connection* conn) {
    while (conn->out_off < conn->outbuf.size()) {
      const ssize_t n = ::write(conn->fd, conn->outbuf.data() + conn->out_off,
                                conn->outbuf.size() - conn->out_off);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      CloseConn(conn->id);  // broken pipe etc.
      return;
    }
    if (conn->out_off == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_off = 0;
      if (conn->close_after_flush) CloseConn(conn->id);
      return;
    }
    // Slow client: pending bytes past the cap close the connection -- the
    // buffer is the only memory a stalled reader can make us hold.
    if (conn->outbuf.size() - conn->out_off > options.max_write_buffer_bytes) {
      slow_clients->Increment();
      CloseConn(conn->id);
    }
  }

  void EvictTimeouts(Clock::TimePoint now) {
    std::vector<uint64_t> drop;
    for (auto& [id, conn] : conns) {
      if (conn->awaiting_async) continue;  // server's turn, not the client's
      if (conn->request_timing_armed) {
        // Slowloris: a request in progress must complete within the header
        // window, however slowly its bytes trickle.
        if (now - conn->request_start >=
            std::chrono::milliseconds(options.header_timeout_ms)) {
          timeouts_header->Increment();
          EnqueueResponse(conn.get(), 408, kJsonType,
                          RenderSubmissionErrorJson(
                              Status::DeadlineExceeded("request header timeout"),
                              0, false),
                          {}, /*keep_alive=*/false);
          TryFlush(conn.get());  // best-effort 408; eviction is unconditional
          drop.push_back(id);
        }
        continue;
      }
      if (conn->outbuf.empty() &&
          now - conn->last_activity >=
              std::chrono::milliseconds(options.idle_timeout_ms)) {
        timeouts_idle->Increment();
        drop.push_back(id);
      }
    }
    for (uint64_t id : drop) CloseConn(id);
  }
};

HttpServer::HttpServer(WhyNotService* service, ServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  NED_CHECK_MSG(service != nullptr, "HttpServer needs a service");
  impl_->service = service;
  impl_->options = options;
  impl_->clock = options.clock != nullptr ? options.clock : Clock::Real();
  impl_->owner = this;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() { return impl_->Start(); }

void HttpServer::Stop() { impl_->Stop(); }

void HttpServer::BeginDrain() {
  ready_.store(false, std::memory_order_relaxed);
  impl_->accepting.store(false, std::memory_order_relaxed);
}

void HttpServer::SetReady(bool ready) {
  ready_.store(ready, std::memory_order_relaxed);
}

size_t HttpServer::open_connections() const {
  return impl_->open_count.load(std::memory_order_relaxed);
}

}  // namespace ned::net
