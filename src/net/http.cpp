#include "net/http.h"

#include <algorithm>

#include "common/strings.h"

namespace ned::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// RFC 7230 token characters (method + header names).
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

bool HttpRequest::HasHeader(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return true;
  }
  return false;
}

bool HttpRequest::KeepAlive() const {
  const std::string connection = ToLower(Header("connection"));
  if (version == "HTTP/1.1") return connection != "close";
  return connection == "keep-alive";
}

void HttpParser::Fail(int status, std::string detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = std::move(detail);
}

size_t HttpParser::Feed(std::string_view data) {
  size_t consumed = 0;
  while (consumed < data.size() && !done()) {
    started_ = true;
    if (state_ == State::kBody) {
      const size_t want = content_length_ - request_.body.size();
      const size_t take = std::min(want, data.size() - consumed);
      request_.body.append(data.data() + consumed, take);
      consumed += take;
      if (request_.body.size() == content_length_) state_ = State::kComplete;
      continue;
    }
    // Line-oriented states: accumulate until LF. The line buffer is bounded
    // by the header-section limit, so a CRLF-less flood cannot grow memory.
    const char c = data[consumed++];
    ++header_bytes_;
    if (header_bytes_ > limits_.max_header_bytes) {
      Fail(413, "header section too large");
      break;
    }
    if (c != '\n') {
      line_ += c;
      if (state_ == State::kRequestLine &&
          line_.size() > limits_.max_request_line_bytes) {
        Fail(413, "request line too long");
        break;
      }
      continue;
    }
    // One full line (strip the optional CR of CRLF).
    std::string_view line = line_;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    bool ok = true;
    if (state_ == State::kRequestLine) {
      if (line.empty()) {
        // Tolerate leading blank lines before the request line (RFC 7230
        // robustness note); they still count against the header budget.
        line_.clear();
        continue;
      }
      ok = FinishRequestLine(line);
    } else {
      ok = FinishHeaderLine(line);
    }
    line_.clear();
    if (!ok) break;
  }
  return consumed;
}

bool HttpParser::FinishRequestLine(std::string_view line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(line.substr(sp2 + 1));
  if (!IsToken(request_.method)) {
    Fail(400, "invalid method token");
    return false;
  }
  if (request_.target.empty() || request_.target[0] != '/') {
    Fail(400, "target must be origin-form");
    return false;
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    Fail(400, "unsupported HTTP version");
    return false;
  }
  state_ = State::kHeaders;
  return true;
}

bool HttpParser::FinishHeaderLine(std::string_view line) {
  if (line.empty()) {
    FinishHeaders();
    return state_ != State::kError;
  }
  if (line.front() == ' ' || line.front() == '\t') {
    // Obsolete line folding: a smuggling vector; reject outright.
    Fail(400, "folded header line");
    return false;
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    Fail(400, "header line without ':'");
    return false;
  }
  std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Includes the "name ends in whitespace" smuggling case: space/tab are
    // not token characters.
    Fail(400, "invalid header name");
    return false;
  }
  request_.headers.emplace_back(ToLower(name),
                                std::string(Trim(line.substr(colon + 1))));
  return true;
}

void HttpParser::FinishHeaders() {
  // Content-Length: absent means no body; present must be one unambiguous
  // decimal value. Duplicates (even equal -- keep it strict and simple),
  // signs, or non-digits are malformed.
  std::string_view length;
  for (const auto& [k, v] : request_.headers) {
    if (k == "content-length") {
      if (!length.empty()) {
        Fail(400, "multiple Content-Length headers");
        return;
      }
      length = v;
      if (length.empty()) {
        Fail(400, "empty Content-Length");
        return;
      }
    }
  }
  if (request_.HasHeader("transfer-encoding")) {
    // Not implemented; accepting it alongside Content-Length is the classic
    // smuggling split, so refuse rather than ignore.
    Fail(400, "Transfer-Encoding not supported");
    return;
  }
  uint64_t n = 0;
  for (char c : length) {
    if (c < '0' || c > '9') {
      Fail(400, "malformed Content-Length");
      return;
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
    if (n > limits_.max_body_bytes) {
      Fail(413, "body too large");
      return;
    }
  }
  content_length_ = static_cast<size_t>(n);
  state_ = content_length_ == 0 ? State::kComplete : State::kBody;
}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  error_status_ = 0;
  error_detail_.clear();
  request_ = HttpRequest{};
  line_.clear();
  header_bytes_ = 0;
  content_length_ = 0;
  started_ = false;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

std::string RenderHttpResponse(
    int status, std::string_view content_type, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers,
    bool keep_alive) {
  std::string out = StrCat("HTTP/1.1 ", status, " ");
  out += HttpReasonPhrase(status);
  out += "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += StrCat("Content-Length: ", body.size(), "\r\n");
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string_view HttpResponse::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return {};
}

Result<size_t> ParseHttpResponse(std::string_view data, HttpResponse* out) {
  const size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return size_t{0};
  std::string_view head = data.substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
    return Status::ParseError("malformed response status line");
  }
  const size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    return Status::ParseError("malformed response status line");
  }
  int status = 0;
  for (size_t i = sp + 1; i < sp + 4; ++i) {
    const char c = status_line[i];
    if (c < '0' || c > '9') {
      return Status::ParseError("malformed response status code");
    }
    status = status * 10 + (c - '0');
  }
  HttpResponse parsed;
  parsed.status = status;
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  size_t content_length = 0;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed response header line");
    }
    std::string name = ToLower(line.substr(0, colon));
    std::string value(Trim(line.substr(colon + 1)));
    if (name == "content-length") {
      content_length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Status::ParseError("malformed response Content-Length");
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
      }
    }
    parsed.headers.emplace_back(std::move(name), std::move(value));
  }
  const size_t total = head_end + 4 + content_length;
  if (data.size() < total) return size_t{0};
  parsed.body = std::string(data.substr(head_end + 4, content_length));
  *out = std::move(parsed);
  return total;
}

}  // namespace ned::net
