/// \file gov.h
/// \brief Synthetic US-government database (bioguide/usaspending/earmarks
/// extract stand-in).
///
/// Schemas:
///   Co(id, firstname, lastname, Byear)         -- congresspeople
///   AA(id, party, state)                        -- affiliations (id = Co.id)
///   SPO(id, sponsorId, sponsorln, party, state) -- earmark sponsors
///   ES(id, earmarkId, sponsorId, substage)      -- earmark stages
///   E(id, earmarkId, camount)                   -- earmark amounts
///
/// Planted behaviours: four Christophers splitting between the Byear filter
/// and the affiliation join (Gov1-3); Democrat sponsor 467 whose
/// Senate-Committee stages lose their partner (Gov4); Lugar whose earmarks
/// are all < 1000 (Gov5); Bennett whose pre-filter amount sum is exactly
/// 18700 but drops after the substage filter (Gov6); a Democrat congressman
/// JOHN from NJ who fails the NY filter, with no sponsor named JOHN (Gov7).

#ifndef NED_DATASETS_GOV_H_
#define NED_DATASETS_GOV_H_

#include "relational/database.h"

namespace ned {

struct GovIds {
  static constexpr int64_t kAnderson = 569;   // Christopher ANDERSON, 1950
  static constexpr int64_t kBaker = 1495;     // Christopher BAKER, 1960
  static constexpr int64_t kMurphy = 1072;    // Christopher MURPHY, 1975, Dem
  static constexpr int64_t kGibson = 772;     // Christopher GIBSON, 1965
  static constexpr int64_t kJohn = 800;       // Elton JOHN, Dem, NJ
  static constexpr int64_t kCraigSpo = 9;     // SPO id, sponsorId 467, Democrat
  static constexpr int64_t kCraigSponsorId = 467;
  static constexpr int64_t kLugarSpo = 199;   // Republican, small earmarks
  static constexpr int64_t kBennettSpo = 77;  // Republican, sum flips at filter
};

Result<Database> BuildGovDb(int scale = 1);

}  // namespace ned

#endif  // NED_DATASETS_GOV_H_
