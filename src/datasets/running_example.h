/// \file running_example.h
/// \brief The paper's running example (Fig. 1): authors A, books B, link AB.
///
/// Dates BC are stored as negative astronomical years (800BC = -800), so the
/// paper's selection "A.dob > 800BC" becomes A.dob > -800.

#ifndef NED_DATASETS_RUNNING_EXAMPLE_H_
#define NED_DATASETS_RUNNING_EXAMPLE_H_

#include "algebra/query_tree.h"
#include "relational/database.h"
#include "whynot/ctuple.h"

namespace ned {

/// Builds the Fig. 1(b) instance:
///   A(aid, name, dob)  : t4 (a1, Homer, -800), t5 (a2, Sophocles, -400),
///                        t6 (a3, Euripides, -400)
///   AB(aid, bid)       : t7 (a1, b2), t8 (a1, b1), t9 (a2, b3)
///   B(bid, title, price): t1 (b1, Odyssey, 15), t2 (b2, Illiad, 45),
///                        t3 (b3, Antigone, 49)
Result<Database> BuildRunningExampleDb();

/// The running-example SQL (Fig. 1(a)):
///   SELECT A.name, AVG(B.price) AS ap FROM A, AB, B
///   WHERE A.dob > -800 AND A.aid = AB.aid AND B.bid = AB.bid
///   GROUP BY A.name
/// Canonicalizing it reproduces the Fig. 1(c) tree: the breakpoint view V is
/// the full A-AB-B join (mQ2), the dob selection sits right above it (mQ3),
/// and the aggregation is the root (mQ).
const char* RunningExampleSql();

/// Builds the canonical query tree for the running example.
Result<QueryTree> BuildRunningExampleTree(const Database& db);

/// The Why-Not question of Ex. 2.1:
///   ((A.name:Homer, ap:x1), x1 > 25)
///   OR ((A.name:x2), x2 != Homer AND x2 != Sophocles)
WhyNotQuestion RunningExampleQuestion();

/// Only the first c-tuple (the one Ex. 2.6 computes the answer for).
WhyNotQuestion RunningExampleQuestionHomer();

}  // namespace ned

#endif  // NED_DATASETS_RUNNING_EXAMPLE_H_
