#include "datasets/gov.h"

#include "common/rng.h"

namespace ned {

Result<Database> BuildGovDb(int scale) {
  NED_CHECK(scale >= 1);
  Database db;
  Rng rng(0x60BULL);

  Relation co("Co", Schema({{"Co", "id"}, {"Co", "firstname"},
                            {"Co", "lastname"}, {"Co", "Byear"}}));
  Relation aa("AA", Schema({{"AA", "id"}, {"AA", "party"}, {"AA", "state"}}));
  Relation spo("SPO", Schema({{"SPO", "id"}, {"SPO", "sponsorId"},
                              {"SPO", "sponsorln"}, {"SPO", "party"},
                              {"SPO", "state"}}));
  Relation es("ES", Schema({{"ES", "id"}, {"ES", "earmarkId"},
                            {"ES", "sponsorId"}, {"ES", "substage"}}));
  Relation e("E", Schema({{"E", "id"}, {"E", "earmarkId"}, {"E", "camount"}}));

  auto add_member = [&](int64_t id, const char* first, const char* last,
                        int64_t byear, const char* party, const char* state) {
    co.AddRow({Value::Int(id), Value::Str(first), Value::Str(last),
               Value::Int(byear)});
    aa.AddRow({Value::Int(id), Value::Str(party), Value::Str(state)});
  };

  // ---- planted congresspeople -------------------------------------------------
  add_member(GovIds::kAnderson, "Christopher", "ANDERSON", 1950, "Republican",
             "TX");
  add_member(GovIds::kBaker, "Christopher", "BAKER", 1960, "Republican", "OH");
  add_member(GovIds::kMurphy, "Christopher", "MURPHY", 1975, "Democrat", "CT");
  add_member(GovIds::kGibson, "Christopher", "GIBSON", 1965, "Republican",
             "NY");
  add_member(GovIds::kJohn, "Elton", "JOHN", 1968, "Democrat", "NJ");

  // ---- planted sponsors ---------------------------------------------------------
  auto add_spo = [&](int64_t id, int64_t sponsor_id, const char* ln,
                     const char* party, const char* state) {
    spo.AddRow({Value::Int(id), Value::Int(sponsor_id), Value::Str(ln),
                Value::Str(party), Value::Str(state)});
  };
  auto add_earmark = [&](int64_t es_id, int64_t earmark_id, int64_t sponsor_id,
                         const char* substage, int64_t e_id, double amount) {
    es.AddRow({Value::Int(es_id), Value::Int(earmark_id), Value::Int(sponsor_id),
               Value::Str(substage)});
    e.AddRow({Value::Int(e_id), Value::Int(earmark_id), Value::Real(amount)});
  };

  // Sponsor 467 (Craig) is a Democrat: his three Senate-Committee stages lose
  // their sponsor partner at the join (Gov4).
  add_spo(GovIds::kCraigSpo, GovIds::kCraigSponsorId, "Craig", "Democrat", "ID");
  add_earmark(78, 4001, GovIds::kCraigSponsorId, "Senate Committee", 5001, 2500);
  add_earmark(79, 4002, GovIds::kCraigSponsorId, "Senate Committee", 5002, 1800);
  add_earmark(80, 4003, GovIds::kCraigSponsorId, "Senate Committee", 5003, 900);

  // Lugar is Republican but sponsored no earmarks at all: both systems
  // blame the top join for Gov5 (his trace and the >=1000 amounts all die
  // there).
  add_spo(GovIds::kLugarSpo, 250, "Lugar", "Republican", "IN");

  // Bennett: Senate-Committee amounts 10000 + 8000, plus a House-Committee
  // 700 -- pre-filter sum exactly 18700, post-filter 18000 (Gov6's flip of
  // am = 18700 at the substage selection). The House amount stays below 1000
  // so it does not enter Gov5's Dir|E.
  add_spo(GovIds::kBennettSpo, 310, "Bennett", "Republican", "UT");
  add_earmark(95, 4020, 310, "Senate Committee", 5020, 10000);
  add_earmark(96, 4021, 310, "Senate Committee", 5021, 8000);
  add_earmark(97, 4022, 310, "House Committee", 5022, 700);

  // A Democrat NY sponsor so Q11 has results (and none named JOHN -- Gov7's
  // second disjunct is empty).
  add_spo(400, 411, "Schumer", "Democrat", "NY");
  add_earmark(98, 4030, 411, "Senate Committee", 5030, 1200);

  // ---- filler -------------------------------------------------------------------
  static const char* kFirst[] = {"James", "Mary", "Robert", "Linda", "David"};
  static const char* kLast[] = {"SMITH", "JONES", "MILLER", "DAVIS", "WILSON",
                                "MOORE", "TAYLOR", "CLARK", "HALL", "YOUNG"};
  static const char* kParties[] = {"Republican", "Democrat"};
  static const char* kStates[] = {"NY", "CA", "TX", "FL", "IL", "PA", "OH"};

  const int n_members = 130 * scale;
  for (int i = 0; i < n_members; ++i) {
    add_member(2000 + i, kFirst[rng.UniformInt(0, 4)],
               kLast[rng.UniformInt(0, 9)],
               rng.UniformInt(1940, 1985), kParties[rng.UniformInt(0, 1)],
               kStates[rng.UniformInt(0, 6)]);
  }

  const int n_sponsors = 150 * scale;
  const int earmarks_per_sponsor = 14;  // ES ~ 2100*scale, E likewise
  int64_t next_earmark = 10000;
  int64_t next_es = 1000, next_e = 20000;
  for (int i = 0; i < n_sponsors; ++i) {
    int64_t sponsor_id = 600 + i;
    add_spo(1000 + i, sponsor_id, kLast[rng.UniformInt(0, 9)],
            kParties[rng.UniformInt(0, 1)], kStates[rng.UniformInt(0, 6)]);
    for (int k = 0; k < earmarks_per_sponsor; ++k) {
      const char* substage = "Senate Committee";
      // Mostly small amounts, some >= 1000 (those become Gov5's Dir|E).
      double amount = rng.Chance(0.25)
                          ? 1000.0 + rng.UniformInt(0, 9000)
                          : static_cast<double>(rng.UniformInt(50, 999));
      add_earmark(next_es++, next_earmark, sponsor_id, substage, next_e++,
                  amount);
      ++next_earmark;
    }
  }

  NED_RETURN_NOT_OK(db.AddRelation(std::move(co)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(aa)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(spo)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(es)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(e)));
  return db;
}

}  // namespace ned
