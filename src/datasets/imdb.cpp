#include "datasets/imdb.h"

#include "common/rng.h"

namespace ned {

Result<Database> BuildImdbDb(int scale) {
  NED_CHECK(scale >= 1);
  Database db;
  Rng rng(0x13DBULL);

  Relation m("M", Schema({{"M", "id"}, {"M", "name"}, {"M", "year"}}));
  Relation r("R", Schema({{"R", "id"}, {"R", "name"}, {"R", "rating"}}));
  Relation l("L", Schema({{"L", "id"}, {"L", "movieId"}, {"L", "locationId"}}));

  // ---- planted ---------------------------------------------------------------
  m.AddRow({Value::Int(ImdbIds::kAvatarMovie), Value::Str("Avatar"),
            Value::Int(2009)});  // fails year > 2009
  r.AddRow({Value::Int(ImdbIds::kAvatarRating), Value::Str("Avatar"),
            Value::Real(8.5)});  // passes rating >= 8

  m.AddRow({Value::Int(ImdbIds::kChristmasMovie), Value::Str("Christmas Story"),
            Value::Int(2010)});
  r.AddRow({Value::Int(ImdbIds::kChristmasRating), Value::Str("Christmas Story"),
            Value::Real(9.0)});
  l.AddRow({Value::Int(ImdbIds::kChristmasLocation),
            Value::Int(ImdbIds::kChristmasMovie), Value::Str("CanadaToronto")});
  // The only USANewYork location belongs to Gotham Nights, which passes
  // both filters and reaches the result -- so the baseline keeps finding
  // successors of the location item and deems Imdb2's answer present.
  m.AddRow({Value::Int(41), Value::Str("Gotham Nights"), Value::Int(2012)});
  r.AddRow({Value::Int(201), Value::Str("Gotham Nights"), Value::Real(8.8)});
  l.AddRow({Value::Int(ImdbIds::kNewYorkLocation), Value::Int(41),
            Value::Str("USANewYork")});

  // ---- filler ----------------------------------------------------------------
  // Filler movies ensure the result is non-empty: many pass both filters and
  // have locations.
  const int n_movies = 450 * scale;
  static const char* kLocations[] = {"USALosAngeles", "UKLondon", "FranceParis",
                                     "ItalyRome", "JapanTokyo"};
  for (int i = 0; i < n_movies; ++i) {
    int64_t id = 1000 + i;
    std::string name = "Movie_" + std::to_string(i);
    int64_t year = rng.UniformInt(1995, 2015);
    m.AddRow({Value::Int(id), Value::Str(name), Value::Int(year)});
    double rating = 3.0 + rng.UniformDouble() * 7.0;
    r.AddRow({Value::Int(2000 + i), Value::Str(name), Value::Real(rating)});
    int n_loc = static_cast<int>(rng.UniformInt(1, 2));
    for (int k = 0; k < n_loc; ++k) {
      l.AddRow({Value::Int(10000 + i * 3 + k), Value::Int(id),
                Value::Str(kLocations[rng.UniformInt(0, 4)])});
    }
  }

  NED_RETURN_NOT_OK(db.AddRelation(std::move(m)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(r)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(l)));
  return db;
}

}  // namespace ned
