#include "datasets/crime.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"

namespace ned {

Result<Database> BuildCrimeDb(int scale) {
  NED_CHECK(scale >= 1);
  Database db;
  Rng rng(0xC41A5EULL);

  Relation p("P", Schema({{"P", "id"}, {"P", "name"}, {"P", "hair"},
                          {"P", "clothes"}}));
  Relation w("W", Schema({{"W", "id"}, {"W", "name"}, {"W", "sector"}}));
  Relation s("S", Schema({{"S", "id"}, {"S", "witnessName"}, {"S", "hair"},
                          {"S", "clothes"}}));
  Relation c("C", Schema({{"C", "id"}, {"C", "type"}, {"C", "sector"}}));

  auto add_p = [&](int64_t id, const char* name, const char* hair,
                   const char* clothes) {
    p.AddRow({Value::Int(id), Value::Str(name), Value::Str(hair),
              Value::Str(clothes)});
  };
  auto add_w = [&](int64_t id, const char* name, int64_t sector) {
    w.AddRow({Value::Int(id), Value::Str(name), Value::Int(sector)});
  };
  auto add_s = [&](int64_t id, const char* witness, const char* hair,
                   const char* clothes) {
    s.AddRow({Value::Int(id), Value::Str(witness), Value::Str(hair),
              Value::Str(clothes)});
  };
  auto add_c = [&](int64_t id, const char* type, int64_t sector) {
    c.AddRow({Value::Int(id), Value::Str(type), Value::Int(sector)});
  };

  // ---- planted persons ------------------------------------------------------
  // Hair/clothes combinations of planted persons are unique so their join
  // partners are fully controlled.
  add_p(CrimeIds::kHank, "Hank", "brown", "jacket");
  add_p(CrimeIds::kRoger, "Roger", "black", "coat");  // no S row describes this
  add_p(CrimeIds::kAudrey, "Audrey", "red", "dress");
  add_p(4, "Chiardola", "red", "dress");
  add_p(5, "Davemonet", "red", "dress");
  add_p(6, "Debye", "red", "dress");
  add_p(CrimeIds::kBetsy, "Betsy", "blond", "scarf");
  add_p(8, "Alice", "gray", "hat");  // name < 'B': Q4's result is non-empty
  add_p(9, "Gus", "gray", "cap");    // joins Alice on gray hair

  // ---- planted witnesses / statements / crimes -------------------------------
  // Wendy described Hank but only witnessed a burglary (sector 50 has no car
  // theft): Crime1's Hank chains die at the top join.
  add_w(1, "Wendy", 50);
  add_s(1, "Wendy", "brown", "jacket");
  add_c(110, "Burglary", 50);

  // Susan's sector 77 hosts an aiding+burglary pair but no kidnapping:
  // Crime7's Susan is blocked at the join with the crimes.
  add_w(2, "Susan", 77);
  add_c(120, "Aiding", 77);
  add_c(122, "Burglary", 77);
  add_c(121, "Aiding", 30);

  // Kidnappings never co-located with aiding crimes (Crime6/7).
  add_c(CrimeIds::kKidnap1, "Kidnapping", 5);
  add_c(CrimeIds::kKidnap2, "Kidnapping", 8);

  // Car thefts happen in sectors 10/12, witnessed by Vera/Vic whose
  // statements describe filler persons -- so car thefts reach the result
  // (the baseline then deems Crime1/2 "not missing").
  add_c(CrimeIds::kCarTheft1, "Car theft", 10);
  add_c(CrimeIds::kCarTheft2, "Car theft", 12);
  add_w(3, "Vera", 10);
  add_s(2, "Vera", "hair_1", "cl_1");
  add_w(4, "Vic", 12);
  add_s(3, "Vic", "hair_2", "cl_2");

  // Sam connects sector 90 crimes to the red/dress persons.
  add_w(5, "Sam", 90);
  add_s(4, "Sam", "red", "dress");

  // Betsy's witnesses: 4 crimes in sector 85 + 3 in sector 90 (> 80) and
  // 6 in sector 60 give count 13 before the sector>80 filter and 7 after
  // (Crime9's flip of ct > 8).
  add_w(6, "Wilma", 85);
  add_s(5, "Wilma", "blond", "scarf");
  add_s(6, "Sam", "blond", "scarf");  // Sam also described Betsy (sector 90)
  add_w(7, "Walt", 60);
  add_s(7, "Walt", "blond", "scarf");
  for (int i = 0; i < 4; ++i) add_c(140 + i, "Assault", 85);
  for (int i = 0; i < 3; ++i) add_c(144 + i, "Fraud", 90);
  for (int i = 0; i < 6; ++i) add_c(147 + i, "Theft", 60);

  // ---- filler ----------------------------------------------------------------
  // Filler persons use hair_k/cl_k combinations disjoint from the planted
  // ones; filler witnesses sit in sectors 20..45 (no planted crimes there),
  // and filler crimes use neutral types in those sectors so generic chains
  // exist without touching the planted scenarios. All sectors stay <= 99.
  // Domains (sectors, hair/clothes categories) grow with the scale factor so
  // join selectivities -- and with them intermediate result sizes per input
  // row -- stay roughly constant and runtime scales ~linearly with volume.
  // Filler sectors widen within [20, 98] (all sectors must stay <= 99 so
  // Q2's sector > 99 filter stays empty) but skip the planted sectors, which
  // carry exact counts (Betsy's Crime9 groups).
  const int n_person = 160 * scale;
  const int n_witness = 70 * scale;
  const int n_crime = 220 * scale;
  const int n_categories = 20 * scale;
  const int64_t sector_lo = 20;
  const int64_t sector_hi = std::min<int64_t>(98, 45 + 26L * (scale - 1));
  auto filler_sector = [&]() -> int64_t {
    static const int64_t kPlanted[] = {30, 50, 60, 77, 85, 90};
    while (true) {
      int64_t sector = rng.UniformInt(sector_lo, sector_hi);
      bool planted = false;
      for (int64_t s : kPlanted) planted = planted || s == sector;
      if (!planted) return sector;
    }
  };
  for (int i = 0; i < n_person; ++i) {
    int k = static_cast<int>(rng.UniformInt(1, n_categories));
    std::string name = "Person_" + std::to_string(i);
    p.AddRow({Value::Int(1000 + i), Value::Str(name),
              Value::Str("hair_" + std::to_string(k)),
              Value::Str("cl_" + std::to_string(k))});
  }
  for (int i = 0; i < n_witness; ++i) {
    std::string name = "Witness_" + std::to_string(i);
    w.AddRow({Value::Int(1000 + i), Value::Str(name), Value::Int(filler_sector())});
    // Each filler witness described one filler person category.
    int k = static_cast<int>(rng.UniformInt(1, n_categories));
    s.AddRow({Value::Int(1000 + i), Value::Str(name),
              Value::Str("hair_" + std::to_string(k)),
              Value::Str("cl_" + std::to_string(k))});
  }
  static const char* kTypes[] = {"Robbery", "Fraud", "Assault", "Theft",
                                 "Vandalism"};
  for (int i = 0; i < n_crime; ++i) {
    const char* type = kTypes[rng.UniformInt(0, 4)];
    c.AddRow({Value::Int(10000 + i), Value::Str(type), Value::Int(filler_sector())});
  }

  NED_RETURN_NOT_OK(db.AddRelation(std::move(p)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(w)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(s)));
  NED_RETURN_NOT_OK(db.AddRelation(std::move(c)));
  return db;
}

}  // namespace ned
