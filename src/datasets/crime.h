/// \file crime.h
/// \brief Synthetic crime database (Trio's sample crime DB stand-in).
///
/// Schemas (first column is the key used in displays, per paper footnote 2):
///   C(id, type, sector)               -- crimes
///   W(id, name, sector)               -- witnesses
///   S(id, witnessName, hair, clothes) -- sighting statements
///   P(id, name, hair, clothes)        -- persons
///
/// The generator is deterministic. A small hand-planted core realises the
/// behaviours the paper's Crime1-Crime10 use cases rely on (a described but
/// unwitnessed suspect, a never-described person, self-join traps around
/// aiding/kidnapping crimes, an emptiable sector selection, aggregation
/// counts that flip across the sector>80 filter); `scale` multiplies the
/// filler volume for scaling benchmarks without disturbing the core.

#ifndef NED_DATASETS_CRIME_H_
#define NED_DATASETS_CRIME_H_

#include "relational/database.h"

namespace ned {

/// Planted tuple ids (first-column key values) used by tests and examples.
struct CrimeIds {
  static constexpr int64_t kHank = 1;       // P: brown/jacket, described
  static constexpr int64_t kRoger = 2;      // P: black/coat, never described
  static constexpr int64_t kAudrey = 3;     // P: red/dress
  static constexpr int64_t kBetsy = 7;      // P: blond/scarf (Crime9 counts)
  static constexpr int64_t kCarTheft1 = 100;  // C: sector 10
  static constexpr int64_t kCarTheft2 = 101;  // C: sector 12
  static constexpr int64_t kKidnap1 = 130;    // C: sector 5 (no aiding there)
  static constexpr int64_t kKidnap2 = 131;    // C: sector 8
};

/// Builds the crime database. All crime sectors are <= 99, so the Q2
/// selection sector > 99 has an empty result (Crime3-5).
Result<Database> BuildCrimeDb(int scale = 1);

}  // namespace ned

#endif  // NED_DATASETS_CRIME_H_
