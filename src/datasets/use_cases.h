/// \file use_cases.h
/// \brief The paper's evaluation workload: queries Q1-Q12 (Table 3) and use
/// cases Crime1-10, Imdb1-2, Gov1-7 (Table 4).
///
/// Each use case pairs a query over one of the three databases with a
/// Why-Not question. The registry owns the databases (built once) and hands
/// out freshly canonicalized query trees so engines can be constructed per
/// measurement.

#ifndef NED_DATASETS_USE_CASES_H_
#define NED_DATASETS_USE_CASES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/query_tree.h"
#include "canonical/query_spec.h"
#include "relational/database.h"
#include "whynot/ctuple.h"

namespace ned {

/// One evaluation use case (a row of Table 4).
struct UseCase {
  std::string name;        ///< "Crime1"
  std::string db_name;     ///< "crime" / "imdb" / "gov"
  std::string query_name;  ///< "Q1".."Q12"
  std::string sql;         ///< the query in the library's SQL subset
  QuerySpec spec;          ///< bound logical form (canonicalization input)
  WhyNotQuestion question;

  /// "(P.Name:Hank, C.Type:Car theft)" (Table 4's predicate column).
  std::string PredicateDisplay() const { return question.ToString(); }
};

/// Owns the crime/imdb/gov instances and the 19 use cases.
class UseCaseRegistry {
 public:
  /// Builds the three databases at `scale` (1 = paper-comparable sizes) and
  /// binds all use cases.
  static Result<UseCaseRegistry> Build(int scale = 1);

  const Database& database(const std::string& name) const {
    return *databases_.at(name);
  }
  const std::vector<UseCase>& use_cases() const { return use_cases_; }

  /// The use case named `name`, or an error.
  Result<const UseCase*> Find(const std::string& name) const;

  /// Canonicalizes the use case's query against its database.
  Result<QueryTree> BuildTree(const UseCase& use_case) const;

 private:
  std::map<std::string, std::shared_ptr<Database>> databases_;
  std::vector<UseCase> use_cases_;
};

}  // namespace ned

#endif  // NED_DATASETS_USE_CASES_H_
