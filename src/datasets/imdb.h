/// \file imdb.h
/// \brief Synthetic movie database (IMDB/MovieLens extract stand-in).
///
/// Schemas:
///   M(id, name, year)            -- movies
///   R(id, name, rating)          -- ratings (joined to M by movie name)
///   L(id, movieId, locationId)   -- filming locations (movieId = M.id)
///
/// Planted behaviours: Avatar is rated >= 8 but dated 2009 (fails the
/// year > 2009 filter -- Imdb1); Christmas Story passes both filters but was
/// filmed in Toronto while the only USANewYork location row belongs to a
/// different movie (Imdb2's renamed-attribute question).

#ifndef NED_DATASETS_IMDB_H_
#define NED_DATASETS_IMDB_H_

#include "relational/database.h"

namespace ned {

struct ImdbIds {
  static constexpr int64_t kAvatarMovie = 18;
  static constexpr int64_t kAvatarRating = 124;
  static constexpr int64_t kChristmasMovie = 40;
  static constexpr int64_t kChristmasRating = 200;
  static constexpr int64_t kChristmasLocation = 300;  // Toronto
  static constexpr int64_t kNewYorkLocation = 301;    // belongs to Gotham Nights (41)
};

Result<Database> BuildImdbDb(int scale = 1);

}  // namespace ned

#endif  // NED_DATASETS_IMDB_H_
