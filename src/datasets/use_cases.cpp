#include "datasets/use_cases.h"

#include "canonical/canonicalizer.h"
#include "datasets/crime.h"
#include "datasets/gov.h"
#include "datasets/imdb.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace ned {
namespace {

// ---- Table 3: the query texts ------------------------------------------------

const char* kQ1 =
    "SELECT P.name, C.type FROM P, S, W, C "
    "WHERE C.sector = W.sector AND W.name = S.witnessName "
    "AND S.hair = P.hair AND S.clothes = P.clothes";

const char* kQ2 =
    "SELECT P.name, C.type FROM P, S, W, C "
    "WHERE C.sector = W.sector AND W.name = S.witnessName "
    "AND S.hair = P.hair AND S.clothes = P.clothes AND C.sector > 99";

const char* kQ3 =
    "SELECT W.name, C2.type FROM C C2, C C1, W "
    "WHERE C2.sector = C1.sector AND W.sector = C2.sector "
    "AND C1.type = 'Aiding'";

const char* kQ4 =
    "SELECT P2.name FROM P P2, P P1 "
    "WHERE P2.hair = P1.hair AND P1.name < 'B' AND P1.name != P2.name";

const char* kQ5 =
    "SELECT name, L.locationId FROM M, R, L "
    "WHERE M.name = R.name AND L.movieId = M.id "
    "AND M.year > 2009 AND R.rating >= 8";

const char* kQ6 =
    "SELECT Co.firstname, Co.lastname FROM Co, AA "
    "WHERE Co.id = AA.id AND AA.party = 'Republican' AND Co.Byear > 1970";

const char* kQ7 =
    "SELECT sponsorId, SPO.sponsorln, E.camount FROM E, ES, SPO "
    "WHERE E.earmarkId = ES.earmarkId AND ES.sponsorId = SPO.sponsorId "
    "AND ES.substage = 'Senate Committee' AND SPO.party = 'Republican'";

const char* kQ8 =
    "SELECT P.name, count(C.type) AS ct FROM P, S, W, C "
    "WHERE C.sector = W.sector AND W.name = S.witnessName "
    "AND S.hair = P.hair AND S.clothes = P.clothes AND C.sector > 80 "
    "GROUP BY P.name";

const char* kQ9 =
    "SELECT SPO.sponsorln, sum(E.camount) AS am FROM E, ES, SPO "
    "WHERE E.earmarkId = ES.earmarkId AND ES.sponsorId = SPO.sponsorId "
    "AND SPO.party = 'Republican' AND ES.substage = 'Senate Committee' "
    "GROUP BY SPO.sponsorln";

// Q12 = Q10 UNION Q11 (Table 3's two Democrat-NY lookups), renamed to the
// common output attribute "name" via the first block's alias (the binder
// turns it into spec.union_names, so the text round-trips through
// CompileSql -- the service path relies on it).
const char* kQ12 =
    "SELECT Co.lastname AS name FROM Co, AA "
    "WHERE Co.id = AA.id AND AA.party = 'Democrat' AND AA.state = 'NY' "
    "UNION SELECT SPO.sponsorln FROM SPO "
    "WHERE SPO.party = 'Democrat' AND SPO.state = 'NY'";

// ---- Table 4: the questions ----------------------------------------------------

CTuple Fields(std::initializer_list<std::pair<const char*, Value>> fields) {
  CTuple tc;
  for (const auto& [attr, value] : fields) tc.Add(attr, value);
  return tc;
}

}  // namespace

Result<const UseCase*> UseCaseRegistry::Find(const std::string& name) const {
  for (const UseCase& uc : use_cases_) {
    if (uc.name == name) return &uc;
  }
  return Status::NotFound("no use case named " + name);
}

Result<QueryTree> UseCaseRegistry::BuildTree(const UseCase& use_case) const {
  return Canonicalize(use_case.spec, database(use_case.db_name));
}

Result<UseCaseRegistry> UseCaseRegistry::Build(int scale) {
  UseCaseRegistry registry;
  {
    NED_ASSIGN_OR_RETURN(Database crime, BuildCrimeDb(scale));
    registry.databases_["crime"] = std::make_shared<Database>(std::move(crime));
    NED_ASSIGN_OR_RETURN(Database imdb, BuildImdbDb(scale));
    registry.databases_["imdb"] = std::make_shared<Database>(std::move(imdb));
    NED_ASSIGN_OR_RETURN(Database gov, BuildGovDb(scale));
    registry.databases_["gov"] = std::make_shared<Database>(std::move(gov));
  }

  auto add = [&](const std::string& name, const std::string& db_name,
                 const std::string& query_name, const std::string& sql,
                 WhyNotQuestion question) -> Status {
    UseCase uc;
    uc.name = name;
    uc.db_name = db_name;
    uc.query_name = query_name;
    uc.sql = sql;
    NED_ASSIGN_OR_RETURN(SqlQuery ast, ParseSql(sql));
    NED_ASSIGN_OR_RETURN(uc.spec, BindSql(ast, registry.database(db_name)));
    uc.question = std::move(question);
    registry.use_cases_.push_back(std::move(uc));
    return Status::OK();
  };

  // ---- crime -------------------------------------------------------------------
  NED_RETURN_NOT_OK(add("Crime1", "crime", "Q1", kQ1,
                        WhyNotQuestion(Fields({{"P.name", Value::Str("Hank")},
                                               {"C.type", Value::Str("Car theft")}}))));
  NED_RETURN_NOT_OK(add("Crime2", "crime", "Q1", kQ1,
                        WhyNotQuestion(Fields({{"P.name", Value::Str("Roger")},
                                               {"C.type", Value::Str("Car theft")}}))));
  NED_RETURN_NOT_OK(add("Crime3", "crime", "Q2", kQ2,
                        WhyNotQuestion(Fields({{"P.name", Value::Str("Roger")},
                                               {"C.type", Value::Str("Car theft")}}))));
  NED_RETURN_NOT_OK(add("Crime4", "crime", "Q2", kQ2,
                        WhyNotQuestion(Fields({{"P.name", Value::Str("Hank")},
                                               {"C.type", Value::Str("Car theft")}}))));
  NED_RETURN_NOT_OK(add("Crime5", "crime", "Q2", kQ2,
                        WhyNotQuestion(Fields({{"P.name", Value::Str("Hank")}}))));
  NED_RETURN_NOT_OK(add("Crime6", "crime", "Q3", kQ3,
                        WhyNotQuestion(Fields({{"C2.type", Value::Str("Kidnapping")}}))));
  NED_RETURN_NOT_OK(add("Crime7", "crime", "Q3", kQ3,
                        WhyNotQuestion(Fields({{"W.name", Value::Str("Susan")},
                                               {"C2.type", Value::Str("Kidnapping")}}))));
  NED_RETURN_NOT_OK(add("Crime8", "crime", "Q4", kQ4,
                        WhyNotQuestion(Fields({{"P2.name", Value::Str("Audrey")}}))));
  {
    CTuple tc;
    tc.Add("P.name", Value::Str("Betsy"))
        .AddVar("ct", "x")
        .Where("x", CompareOp::kGt, Value::Int(8));
    NED_RETURN_NOT_OK(add("Crime9", "crime", "Q8", kQ8, WhyNotQuestion(tc)));
  }
  NED_RETURN_NOT_OK(add("Crime10", "crime", "Q8", kQ8,
                        WhyNotQuestion(Fields({{"P.name", Value::Str("Roger")}}))));

  // ---- imdb --------------------------------------------------------------------
  NED_RETURN_NOT_OK(add("Imdb1", "imdb", "Q5", kQ5,
                        WhyNotQuestion(Fields({{"name", Value::Str("Avatar")}}))));
  NED_RETURN_NOT_OK(
      add("Imdb2", "imdb", "Q5", kQ5,
          WhyNotQuestion(Fields({{"name", Value::Str("Christmas Story")},
                                 {"L.locationId", Value::Str("USANewYork")}}))));

  // ---- gov ---------------------------------------------------------------------
  NED_RETURN_NOT_OK(add("Gov1", "gov", "Q6", kQ6,
                        WhyNotQuestion(Fields({{"Co.firstname", Value::Str("Christopher")}}))));
  NED_RETURN_NOT_OK(
      add("Gov2", "gov", "Q6", kQ6,
          WhyNotQuestion(Fields({{"Co.firstname", Value::Str("Christopher")},
                                 {"Co.lastname", Value::Str("MURPHY")}}))));
  NED_RETURN_NOT_OK(
      add("Gov3", "gov", "Q6", kQ6,
          WhyNotQuestion(Fields({{"Co.firstname", Value::Str("Christopher")},
                                 {"Co.lastname", Value::Str("GIBSON")}}))));
  NED_RETURN_NOT_OK(add("Gov4", "gov", "Q7", kQ7,
                        WhyNotQuestion(Fields({{"sponsorId", Value::Int(467)}}))));
  {
    CTuple tc;
    tc.Add("SPO.sponsorln", Value::Str("Lugar"))
        .AddVar("E.camount", "x")
        .Where("x", CompareOp::kGe, Value::Int(1000));
    NED_RETURN_NOT_OK(add("Gov5", "gov", "Q7", kQ7, WhyNotQuestion(tc)));
  }
  {
    CTuple tc;
    tc.Add("SPO.sponsorln", Value::Str("Bennett"))
        .AddVar("am", "x")
        .Where("x", CompareOp::kEq, Value::Int(18700));
    NED_RETURN_NOT_OK(add("Gov6", "gov", "Q9", kQ9, WhyNotQuestion(tc)));
  }
  NED_RETURN_NOT_OK(add("Gov7", "gov", "Q12", kQ12,
                        WhyNotQuestion(Fields({{"name", Value::Str("JOHN")}}))));

  return registry;
}

}  // namespace ned
