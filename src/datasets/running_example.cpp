#include "datasets/running_example.h"

#include "sql/binder.h"

namespace ned {

Result<Database> BuildRunningExampleDb() {
  Database db;

  Relation a("A", Schema({{"A", "aid"}, {"A", "name"}, {"A", "dob"}}));
  a.AddRow({Value::Str("a1"), Value::Str("Homer"), Value::Int(-800)});      // t4
  a.AddRow({Value::Str("a2"), Value::Str("Sophocles"), Value::Int(-400)});  // t5
  a.AddRow({Value::Str("a3"), Value::Str("Euripides"), Value::Int(-400)});  // t6
  NED_RETURN_NOT_OK(db.AddRelation(std::move(a)));

  Relation ab("AB", Schema({{"AB", "aid"}, {"AB", "bid"}}));
  ab.AddRow({Value::Str("a1"), Value::Str("b2")});  // t7
  ab.AddRow({Value::Str("a1"), Value::Str("b1")});  // t8
  ab.AddRow({Value::Str("a2"), Value::Str("b3")});  // t9
  NED_RETURN_NOT_OK(db.AddRelation(std::move(ab)));

  Relation b("B", Schema({{"B", "bid"}, {"B", "title"}, {"B", "price"}}));
  b.AddRow({Value::Str("b1"), Value::Str("Odyssey"), Value::Int(15)});   // t1
  b.AddRow({Value::Str("b2"), Value::Str("Illiad"), Value::Int(45)});    // t2
  b.AddRow({Value::Str("b3"), Value::Str("Antigone"), Value::Int(49)});  // t3
  NED_RETURN_NOT_OK(db.AddRelation(std::move(b)));

  return db;
}

const char* RunningExampleSql() {
  return "SELECT A.name, avg(B.price) AS ap FROM A, AB, B "
         "WHERE A.aid = AB.aid AND B.bid = AB.bid AND A.dob > -800 "
         "GROUP BY A.name";
}

Result<QueryTree> BuildRunningExampleTree(const Database& db) {
  return CompileSql(RunningExampleSql(), db);
}

WhyNotQuestion RunningExampleQuestionHomer() {
  CTuple tc;
  tc.Add("A.name", Value::Str("Homer"))
      .AddVar("ap", "x1")
      .Where("x1", CompareOp::kGt, Value::Int(25));
  return WhyNotQuestion(std::move(tc));
}

WhyNotQuestion RunningExampleQuestion() {
  WhyNotQuestion q = RunningExampleQuestionHomer();
  CTuple other;
  other.AddVar("A.name", "x2")
      .Where("x2", CompareOp::kNe, Value::Str("Homer"))
      .Where("x2", CompareOp::kNe, Value::Str("Sophocles"));
  q.AddCTuple(std::move(other));
  return q;
}

}  // namespace ned
