/// \file ctuple.h
/// \brief v-tuples, conditional tuples and Why-Not questions (Defs. 2.4-2.6).
///
/// A Why-Not question w.r.t. a query Q is a predicate P over Q's target type:
/// a disjunction of c-tuples. Each c-tuple pairs attributes with either a
/// constant ("I want name Homer") or a variable ("some price x1"), plus a
/// conjunctive condition on the variables ("x1 > 25").

#ifndef NED_WHYNOT_CTUPLE_H_
#define NED_WHYNOT_CTUPLE_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/condition.h"
#include "relational/attribute.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace ned {

/// A c-tuple field entry: a constant or a variable (Def. 2.4's e_i).
struct CValue {
  bool is_var = false;
  Value constant;   ///< when !is_var
  std::string var;  ///< when is_var

  static CValue Const(Value v) {
    CValue c;
    c.constant = std::move(v);
    return c;
  }
  static CValue Var(std::string name) {
    CValue c;
    c.is_var = true;
    c.var = std::move(name);
    return c;
  }

  std::string ToString() const {
    return is_var ? var : constant.ToString();
  }

  bool operator==(const CValue& other) const {
    return is_var == other.is_var && constant == other.constant &&
           var == other.var;
  }
};

/// A conditional tuple (Def. 2.5): a v-tuple plus a conjunctive condition.
class CTuple {
 public:
  CTuple() = default;

  /// Adds a constant field, e.g. Add("A.name", Value::Str("Homer")).
  CTuple& Add(const std::string& dotted_attr, Value v);
  /// Adds a variable field, e.g. AddVar("ap", "x1").
  CTuple& AddVar(const std::string& dotted_attr, std::string var);
  /// Adds a field with an explicit attribute.
  CTuple& AddField(Attribute attr, CValue value);
  /// Adds a condition conjunct.
  CTuple& Where(CPred pred);
  /// Sugar: Where("x1", CompareOp::kGt, Value::Int(25)).
  CTuple& Where(std::string var, CompareOp op, Value constant);

  const std::vector<std::pair<Attribute, CValue>>& fields() const {
    return fields_;
  }
  const std::vector<CPred>& cond() const { return cond_; }
  bool empty() const { return fields_.empty(); }

  /// type(tc): the set of attributes in the v-tuple.
  Schema Type() const;

  /// The field for `attr`, or nullptr.
  const CValue* Find(const Attribute& attr) const;

  /// "((A.name:Homer, ap:x1), x1 > 25)".
  std::string ToString() const;

  bool operator==(const CTuple& other) const {
    return fields_ == other.fields_;  // cond compared separately when needed
  }

 private:
  std::vector<std::pair<Attribute, CValue>> fields_;
  std::vector<CPred> cond_;
};

/// A Why-Not question (Def. 2.6): a disjunction of c-tuples over Q's target
/// type.
class WhyNotQuestion {
 public:
  WhyNotQuestion() = default;
  explicit WhyNotQuestion(CTuple single) { ctuples_.push_back(std::move(single)); }

  WhyNotQuestion& AddCTuple(CTuple tc) {
    ctuples_.push_back(std::move(tc));
    return *this;
  }

  const std::vector<CTuple>& ctuples() const { return ctuples_; }
  bool empty() const { return ctuples_.empty(); }

  /// "tc1 OR tc2".
  std::string ToString() const;

 private:
  std::vector<CTuple> ctuples_;
};

}  // namespace ned

#endif  // NED_WHYNOT_CTUPLE_H_
