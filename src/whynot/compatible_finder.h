/// \file compatible_finder.h
/// \brief Compatibility of source tuples with a c-tuple (paper Def. 2.8) and
/// the CompatibleFinder preprocessing step (Sec. 3.1, 2a).
///
/// Given an *unrenamed* c-tuple, Dir_tc collects the source tuples that can
/// contribute the constrained values ("direct compatible set"); every tuple
/// of the remaining relations forms InDir_tc ("indirect compatible set"):
/// data whose presence is only required by the query, not by the question.
/// Fields on aggregation output attributes do not select source tuples; they
/// become the condition cond-alpha checked at/above the breakpoint view V.

#ifndef NED_WHYNOT_COMPATIBLE_FINDER_H_
#define NED_WHYNOT_COMPATIBLE_FINDER_H_

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "exec/evaluator.h"
#include "whynot/ctuple.h"

namespace ned {

/// The aggregation-related part of a c-tuple: group-attribute fields that
/// identify which group the user asks about, aggregate-output fields, and
/// the variable conditions constraining them.
struct CondAlpha {
  /// Qualified fields that belong to the aggregation's group-by attributes.
  std::vector<std::pair<Attribute, CValue>> group_fields;
  /// Fields on aggregate output attributes (e.g. ap:x1).
  std::vector<std::pair<Attribute, CValue>> agg_fields;
  /// The c-tuple's full condition (variables not mentioned stay free).
  std::vector<CPred> cond;

  bool empty() const { return agg_fields.empty(); }
};

/// Result of CompatibleFinder for one c-tuple.
struct CompatibleSets {
  std::unordered_set<TupleId> dir;    ///< Dir_tc
  std::unordered_set<TupleId> indir;  ///< InDir_tc
  std::unordered_set<TupleId> all;    ///< D = Dir_tc  union  InDir_tc
  /// Dir tuples per alias; keys form S_tc.
  std::map<std::string, std::vector<TupleId>> dir_by_alias;
  /// S_Q \ S_tc: aliases typing InDir (drives the secondary answer).
  std::vector<std::string> indir_aliases;
  /// cond-alpha content extracted from the c-tuple (empty for SPJ queries).
  CondAlpha cond_alpha;

  size_t dir_size() const { return dir.size(); }
};

/// Decides Def. 2.8 compatibility of one source tuple (typed by `schema`,
/// which carries the alias qualification) with an unrenamed c-tuple.
/// Only fields whose qualifier matches `schema`'s alias participate; all
/// (attribute:value) pairs referencing the alias must co-occur in the tuple.
bool IsCompatible(const CTuple& tc, const Tuple& tuple, const Schema& schema);

/// Computes Dir/InDir for an unrenamed c-tuple over the query input.
/// `agg_output_names` lists the aggregate output attributes of the query
/// (empty for SPJ); unqualified fields must name one of them. An optional
/// ExecContext makes the scan over the input instance interruptible.
Result<CompatibleSets> FindCompatibles(
    const CTuple& unrenamed_tc, const QueryInput& input,
    const std::vector<std::string>& agg_output_names,
    ExecContext* ctx = nullptr);

}  // namespace ned

#endif  // NED_WHYNOT_COMPATIBLE_FINDER_H_
