#include "whynot/unrenaming.h"

#include <set>

namespace ned {
namespace {

/// Collects every join renaming triple in the subtree under `node`
/// (stopping at nested unions, which our query class does not produce below
/// joins).
void CollectJoinTriples(const OperatorNode* node,
                        std::vector<RenameTriple>* out) {
  if (node->kind == OpKind::kJoin) {
    for (const auto& t : node->renaming.triples()) out->push_back(t);
  }
  for (const auto& child : node->children) {
    CollectJoinTriples(child.get(), out);
  }
}

/// Expands one c-tuple against a block's join renamings to a fixpoint: a
/// field on a fresh attribute Anew is replaced by two fields on A1 and A2
/// (the `./` merge of Def. 2.7 / Ex. 2.2 -- both land in the *same* c-tuple,
/// since a join requires both origins to carry the value). Returns nullopt
/// when the expansion produces contradictory constant fields.
std::optional<CTuple> ExpandJoins(const CTuple& tc,
                                  const std::vector<RenameTriple>& triples) {
  std::vector<std::pair<Attribute, CValue>> work(tc.fields().begin(),
                                                 tc.fields().end());
  std::vector<std::pair<Attribute, CValue>> done;
  // Each iteration either finishes a field or replaces it by two strictly
  // "earlier" fields (renaming chains are acyclic), so this terminates.
  while (!work.empty()) {
    auto [attr, value] = work.back();
    work.pop_back();
    const RenameTriple* triple = nullptr;
    if (!attr.qualified()) {
      for (const auto& t : triples) {
        if (t.anew == attr.name) {
          triple = &t;
          break;
        }
      }
    }
    if (triple == nullptr) {
      // Terminal field: qualified attribute or aggregation output.
      bool duplicate = false;
      for (const auto& [a, v] : done) {
        if (a == attr) {
          if (v == value) {
            duplicate = true;
            break;
          }
          if (!v.is_var && !value.is_var &&
              !Value::Satisfies(v.constant, CompareOp::kEq, value.constant)) {
            return std::nullopt;  // contradictory constants for one attribute
          }
        }
      }
      if (!duplicate) done.emplace_back(std::move(attr), std::move(value));
      continue;
    }
    work.emplace_back(triple->a1, value);
    work.emplace_back(triple->a2, value);
  }
  CTuple out;
  for (auto& [attr, value] : done) out.AddField(attr, value);
  for (const auto& pred : tc.cond()) out.Where(pred);
  return out;
}

/// nu|i^-1 for a union node: replaces union-output names by the side's
/// attribute.
CTuple InverseUnionSide(const CTuple& tc, const Renaming& renaming, int side) {
  CTuple out;
  for (const auto& [attr, value] : tc.fields()) {
    if (!attr.qualified()) {
      std::optional<RenameTriple> triple = renaming.FindByNewName(attr.name);
      if (triple.has_value()) {
        out.AddField(side == 1 ? triple->a1 : triple->a2, value);
        continue;
      }
    }
    out.AddField(attr, value);
  }
  for (const auto& pred : tc.cond()) out.Where(pred);
  return out;
}

/// Descends through union nodes (forking one disjunct per operand) and
/// expands join renamings within each union-free block.
void Unrename(const OperatorNode* node, const CTuple& tc,
              std::vector<CTuple>* out) {
  if (node->kind == OpKind::kDifference) {
    // Only left tuples can appear in a difference's output, so the question
    // unrenames through the left operand (the right operand's data can only
    // be responsible by *presence*, which pickiness at the difference node
    // captures).
    Unrename(node->children[0].get(), InverseUnionSide(tc, node->renaming, 1),
             out);
    return;
  }
  if (node->kind == OpKind::kUnion) {
    Unrename(node->children[0].get(), InverseUnionSide(tc, node->renaming, 1),
             out);
    Unrename(node->children[1].get(), InverseUnionSide(tc, node->renaming, 2),
             out);
    return;
  }
  std::vector<RenameTriple> triples;
  CollectJoinTriples(node, &triples);
  std::optional<CTuple> expanded = ExpandJoins(tc, triples);
  if (expanded.has_value()) out->push_back(std::move(*expanded));
}

}  // namespace

Result<std::vector<CTuple>> UnrenameCTuple(const QueryTree& tree,
                                           const CTuple& tc) {
  std::vector<CTuple> out;
  Unrename(tree.root(), tc, &out);
  return out;
}

Result<WhyNotQuestion> UnrenameQuestion(const QueryTree& tree,
                                        const WhyNotQuestion& question) {
  WhyNotQuestion out;
  for (const auto& tc : question.ctuples()) {
    NED_ASSIGN_OR_RETURN(std::vector<CTuple> unrenamed, UnrenameCTuple(tree, tc));
    for (auto& u : unrenamed) out.AddCTuple(std::move(u));
  }
  return out;
}

}  // namespace ned
