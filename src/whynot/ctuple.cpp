#include "whynot/ctuple.h"

#include "common/strings.h"

namespace ned {

CTuple& CTuple::Add(const std::string& dotted_attr, Value v) {
  return AddField(Attribute::Parse(dotted_attr), CValue::Const(std::move(v)));
}

CTuple& CTuple::AddVar(const std::string& dotted_attr, std::string var) {
  return AddField(Attribute::Parse(dotted_attr), CValue::Var(std::move(var)));
}

CTuple& CTuple::AddField(Attribute attr, CValue value) {
  fields_.emplace_back(std::move(attr), std::move(value));
  return *this;
}

CTuple& CTuple::Where(CPred pred) {
  cond_.push_back(std::move(pred));
  return *this;
}

CTuple& CTuple::Where(std::string var, CompareOp op, Value constant) {
  return Where(CPred::VsConst(std::move(var), op, std::move(constant)));
}

Schema CTuple::Type() const {
  Schema type;
  for (const auto& [attr, _] : fields_) {
    if (!type.Contains(attr)) type.Add(attr);
  }
  return type;
}

const CValue* CTuple::Find(const Attribute& attr) const {
  for (const auto& [a, v] : fields_) {
    if (a == attr) return &v;
  }
  return nullptr;
}

std::string CTuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const auto& [attr, value] : fields_) {
    parts.push_back(attr.FullName() + ":" + value.ToString());
  }
  std::string tuple = "(" + Join(parts, ", ") + ")";
  if (cond_.empty()) return tuple;
  return "(" + tuple + ", " + ConditionToString(cond_) + ")";
}

std::string WhyNotQuestion::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(ctuples_.size());
  for (const auto& tc : ctuples_) parts.push_back(tc.ToString());
  return Join(parts, " OR ");
}

}  // namespace ned
