#include "whynot/compatible_finder.h"

#include <algorithm>

#include "expr/satisfiability.h"

namespace ned {

bool IsCompatible(const CTuple& tc, const Tuple& tuple, const Schema& schema) {
  NED_CHECK(schema.size() > 0);
  const std::string& alias = schema.at(0).qualifier;

  // Collect the fields referencing this alias. Def. 2.8 (1): the shared type
  // must be non-empty.
  bool any_shared = false;
  std::map<std::string, Value> bindings;
  for (const auto& [attr, value] : tc.fields()) {
    if (attr.qualifier != alias) continue;
    std::optional<size_t> idx = schema.IndexOf(attr);
    if (!idx.has_value()) continue;  // question names an unknown attribute
    any_shared = true;
    const Value& tuple_value = tuple.at(*idx);
    if (!value.is_var) {
      // Def. 2.8 (2a): the valuation must map tc.A to t.A -- for constants
      // this requires equality.
      if (!Value::Satisfies(tuple_value, CompareOp::kEq, value.constant)) {
        return false;
      }
    } else {
      // Variable field: the valuation binds the variable to t.A; a variable
      // used twice on this relation must bind consistently.
      auto it = bindings.find(value.var);
      if (it != bindings.end()) {
        if (!Value::Satisfies(it->second, CompareOp::kEq, tuple_value)) {
          return false;
        }
      } else {
        bindings.emplace(value.var, tuple_value);
      }
    }
  }
  if (!any_shared) return false;
  // Def. 2.8 (2b): the valuation (extended on the free variables) must
  // satisfy tc.cond.
  return SatisfiableWith(tc.cond(), bindings);
}

Result<CompatibleSets> FindCompatibles(
    const CTuple& unrenamed_tc, const QueryInput& input,
    const std::vector<std::string>& agg_output_names, ExecContext* ctx) {
  CompatibleSets sets;

  // Split fields: per-alias qualified fields vs aggregation-output fields.
  std::unordered_set<std::string> referenced_aliases;
  for (const auto& [attr, value] : unrenamed_tc.fields()) {
    if (attr.qualified()) {
      referenced_aliases.insert(attr.qualifier);
      continue;
    }
    if (std::find(agg_output_names.begin(), agg_output_names.end(),
                  attr.name) == agg_output_names.end()) {
      return Status::InvalidArgument(
          "unrenamed c-tuple field is neither qualified nor an aggregate "
          "output: " +
          attr.FullName());
    }
    sets.cond_alpha.agg_fields.emplace_back(attr, value);
  }
  sets.cond_alpha.cond = unrenamed_tc.cond();

  for (const std::string& alias : input.aliases()) {
    NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* tuples,
                         input.AliasTuples(alias));
    if (referenced_aliases.count(alias) == 0) {
      // InDir: the whole instance of an unreferenced relation.
      sets.indir_aliases.push_back(alias);
      for (const TraceTuple& t : *tuples) {
        NED_EXEC_TICK(ctx);
        sets.indir.insert(t.rid);
        sets.all.insert(t.rid);
      }
      continue;
    }
    NED_ASSIGN_OR_RETURN(const Schema* schema, input.AliasSchema(alias));
    std::vector<TupleId>& dir_list = sets.dir_by_alias[alias];
    for (const TraceTuple& t : *tuples) {
      NED_EXEC_TICK(ctx);
      if (IsCompatible(unrenamed_tc, t.values, *schema)) {
        dir_list.push_back(t.rid);
        sets.dir.insert(t.rid);
        sets.all.insert(t.rid);
      }
    }
  }

  // Group fields of cond-alpha are the qualified fields (they identify the
  // group the question asks about once aggregation applies).
  for (const auto& [attr, value] : unrenamed_tc.fields()) {
    if (attr.qualified()) {
      sets.cond_alpha.group_fields.emplace_back(attr, value);
    }
  }
  return sets;
}

}  // namespace ned
