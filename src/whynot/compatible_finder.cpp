#include "whynot/compatible_finder.h"

#include <algorithm>

#include "expr/satisfiability.h"

namespace ned {

bool IsCompatible(const CTuple& tc, const Tuple& tuple, const Schema& schema) {
  NED_CHECK(schema.size() > 0);
  const std::string& alias = schema.at(0).qualifier;

  // Collect the fields referencing this alias. Def. 2.8 (1): the shared type
  // must be non-empty.
  bool any_shared = false;
  std::map<std::string, Value> bindings;
  for (const auto& [attr, value] : tc.fields()) {
    if (attr.qualifier != alias) continue;
    std::optional<size_t> idx = schema.IndexOf(attr);
    if (!idx.has_value()) continue;  // question names an unknown attribute
    any_shared = true;
    const Value& tuple_value = tuple.at(*idx);
    if (!value.is_var) {
      // Def. 2.8 (2a): the valuation must map tc.A to t.A -- for constants
      // this requires equality.
      if (!Value::Satisfies(tuple_value, CompareOp::kEq, value.constant)) {
        return false;
      }
    } else {
      // Variable field: the valuation binds the variable to t.A; a variable
      // used twice on this relation must bind consistently.
      auto it = bindings.find(value.var);
      if (it != bindings.end()) {
        if (!Value::Satisfies(it->second, CompareOp::kEq, tuple_value)) {
          return false;
        }
      } else {
        bindings.emplace(value.var, tuple_value);
      }
    }
  }
  if (!any_shared) return false;
  // Def. 2.8 (2b): the valuation (extended on the free variables) must
  // satisfy tc.cond.
  return SatisfiableWith(tc.cond(), bindings);
}

Result<CompatibleSets> FindCompatibles(
    const CTuple& unrenamed_tc, const QueryInput& input,
    const std::vector<std::string>& agg_output_names, ExecContext* ctx) {
  CompatibleSets sets;

  // Split fields: per-alias qualified fields vs aggregation-output fields.
  std::unordered_set<std::string> referenced_aliases;
  for (const auto& [attr, value] : unrenamed_tc.fields()) {
    if (attr.qualified()) {
      referenced_aliases.insert(attr.qualifier);
      continue;
    }
    if (std::find(agg_output_names.begin(), agg_output_names.end(),
                  attr.name) == agg_output_names.end()) {
      return Status::InvalidArgument(
          "unrenamed c-tuple field is neither qualified nor an aggregate "
          "output: " +
          attr.FullName());
    }
    sets.cond_alpha.agg_fields.emplace_back(attr, value);
  }
  sets.cond_alpha.cond = unrenamed_tc.cond();

  // Unreferenced aliases (whole instance into InDir) stay serial: they are
  // pure set inserts. Referenced aliases run the IsCompatible scan, which is
  // the part worth fanning out -- across aliases (independent branches of
  // the algebra tree) and across morsels within large aliases.
  struct DirScan {
    const std::string* alias;
    const std::vector<TraceTuple>* tuples;
    const Schema* schema;
  };
  std::vector<DirScan> scans;
  for (const std::string& alias : input.aliases()) {
    NED_ASSIGN_OR_RETURN(const std::vector<TraceTuple>* tuples,
                         input.AliasTuples(alias));
    if (referenced_aliases.count(alias) == 0) {
      // InDir: the whole instance of an unreferenced relation.
      sets.indir_aliases.push_back(alias);
      for (const TraceTuple& t : *tuples) {
        NED_EXEC_TICK(ctx);
        sets.indir.insert(t.rid);
        sets.all.insert(t.rid);
      }
      continue;
    }
    NED_ASSIGN_OR_RETURN(const Schema* schema, input.AliasSchema(alias));
    sets.dir_by_alias[alias];  // S_tc membership even when the scan is empty
    scans.push_back(DirScan{&alias, tuples, schema});
  }

  if (ParallelActive(ctx) && !scans.empty()) {
    // One task per (alias, morsel): workers only match (IsCompatible is
    // pure) and record matching rids; the coordinator folds charges and
    // inserts matches in (alias, morsel) order, which is exactly the order
    // the serial scan would produce. dir/all/indir are unordered sets and
    // dir_by_alias lists get row-order rids, so results are identical.
    struct Morsel {
      size_t scan;
      size_t begin;
      size_t end;
    };
    std::vector<Morsel> morsels;
    for (size_t s = 0; s < scans.size(); ++s) {
      const size_t n = scans[s].tuples->size();
      const MorselPlan plan = PlanFor(ctx, n);
      for (size_t p = 0; p < plan.partitions; ++p) {
        if (plan.begin(p) < plan.end(p)) {
          morsels.push_back(Morsel{s, plan.begin(p), plan.end(p)});
        }
      }
    }
    std::vector<ExecContext> shards(morsels.size());
    std::vector<std::vector<TupleId>> matches(morsels.size());
    for (size_t m = 0; m < morsels.size(); ++m) ctx->BeginWorkerShard(&shards[m]);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(morsels.size());
    std::vector<Status> statuses(morsels.size(), Status::OK());
    for (size_t m = 0; m < morsels.size(); ++m) {
      tasks.push_back([&, m] {
        const Morsel& morsel = morsels[m];
        const DirScan& scan = scans[morsel.scan];
        auto run = [&]() -> Status {
          for (size_t i = morsel.begin; i < morsel.end; ++i) {
            NED_EXEC_TICK(&shards[m]);
            const TraceTuple& t = (*scan.tuples)[i];
            if (IsCompatible(unrenamed_tc, t.values, *scan.schema)) {
              matches[m].push_back(t.rid);
            }
          }
          return Status::OK();
        };
        statuses[m] = run();
      });
    }
    ctx->task_pool()->RunAndWait(tasks);
    for (size_t m = 0; m < morsels.size(); ++m) {
      ctx->FoldShard(shards[m]);
      NED_RETURN_NOT_OK(ctx->CheckPoint());
      NED_RETURN_NOT_OK(statuses[m]);
      std::vector<TupleId>& dir_list =
          sets.dir_by_alias[*scans[morsels[m].scan].alias];
      for (TupleId rid : matches[m]) {
        dir_list.push_back(rid);
        sets.dir.insert(rid);
        sets.all.insert(rid);
      }
    }
  } else {
    for (const DirScan& scan : scans) {
      std::vector<TupleId>& dir_list = sets.dir_by_alias[*scan.alias];
      for (const TraceTuple& t : *scan.tuples) {
        NED_EXEC_TICK(ctx);
        if (IsCompatible(unrenamed_tc, t.values, *scan.schema)) {
          dir_list.push_back(t.rid);
          sets.dir.insert(t.rid);
          sets.all.insert(t.rid);
        }
      }
    }
  }

  // Group fields of cond-alpha are the qualified fields (they identify the
  // group the question asks about once aggregation applies).
  for (const auto& [attr, value] : unrenamed_tc.fields()) {
    if (attr.qualified()) {
      sets.cond_alpha.group_fields.emplace_back(attr, value);
    }
  }
  return sets;
}

}  // namespace ned
