/// \file unrenaming.h
/// \brief Unrenaming of Why-Not predicates (paper Def. 2.7).
///
/// A Why-Not question is phrased over the query's target type, which may
/// contain new attributes introduced by join/union renamings (e.g. `aid`, or
/// `name` in use case Imdb2). To locate compatible tuples in the query input
/// instance, each c-tuple is rewritten to mention only qualified attributes
/// of S_Q (plus aggregation outputs, which stay): join renamings expand one
/// field into both originating fields within the *same* c-tuple (the `./`
/// merge of Ex. 2.2), union renamings *fork* the c-tuple into one disjunct
/// per operand.

#ifndef NED_WHYNOT_UNRENAMING_H_
#define NED_WHYNOT_UNRENAMING_H_

#include <vector>

#include "algebra/query_tree.h"
#include "common/status.h"
#include "whynot/ctuple.h"

namespace ned {

/// UnR_Q(tc): rewrites one c-tuple against the renamings of `tree`. The
/// result is a disjunction (unions fork; join merges may drop contradictory
/// combinations, yielding possibly fewer tuples).
Result<std::vector<CTuple>> UnrenameCTuple(const QueryTree& tree,
                                           const CTuple& tc);

/// Unrenames every disjunct of a question; the result is the unrenamed
/// predicate associated with P given Q.
Result<WhyNotQuestion> UnrenameQuestion(const QueryTree& tree,
                                        const WhyNotQuestion& question);

}  // namespace ned

#endif  // NED_WHYNOT_UNRENAMING_H_
