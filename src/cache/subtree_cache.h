/// \file subtree_cache.h
/// \brief Memoized materialized outputs of evaluator subtrees.
///
/// The evaluator keys each non-leaf operator's output on the structural
/// fingerprint of its subtree (algebra/fingerprint.h) composed with the node
/// ordinals of the TabQ order and the data-version stamps of every relation
/// the subtree scans (Relation::data_version). Because the rid scheme is
/// deterministic per (node ordinal, row index), a cached output -- values,
/// rids, preds and lineage alike -- is bit-identical to what recomputation
/// would produce, so hits are safe for the whole NedExplain pass including
/// successor tracing. Key derivation and the invalidation argument live in
/// docs/CACHING.md.
///
/// Thread-safe: one mutex around the LRU; values are shared_ptr-to-const so
/// an eviction never invalidates rows an in-flight evaluation still holds.

#ifndef NED_CACHE_SUBTREE_CACHE_H_
#define NED_CACHE_SUBTREE_CACHE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/lru.h"
#include "exec/lineage.h"

namespace ned {

/// Approximate footprint of one materialized TraceTuple. Intentionally the
/// same formula the evaluator charges against ExecContext memory budgets, so
/// "bytes cached" and "bytes charged" speak the same currency.
inline size_t ApproxTraceTupleBytes(const TraceTuple& t) {
  return sizeof(TraceTuple) + t.values.size() * sizeof(Value) +
         t.lineage.size() * sizeof(TupleId) + t.preds.size() * sizeof(Rid);
}

/// Shared, bounded cache of materialized subtree outputs.
class SubtreeCache {
 public:
  using Rows = std::shared_ptr<const std::vector<TraceTuple>>;

  explicit SubtreeCache(size_t byte_budget) : lru_(byte_budget) {}

  /// A zero-budget cache is disabled: the evaluator skips key derivation
  /// entirely, so attaching one is byte-for-byte the cache-free baseline
  /// (even under NED_FORCE_SUBTREE_CACHE, which only replaces a null cache).
  bool enabled() const { return lru_.byte_budget() > 0; }

  /// Returns the cached output for `key`, or nullptr on a miss.
  Rows Lookup(const std::string& key);

  /// Caches `rows` under `key`. No-op (counted as rejected) when the rows
  /// exceed the whole budget.
  void Insert(const std::string& key, Rows rows);

  /// Drops every entry (stats other than occupancy are preserved).
  void Clear();

  LruStats stats() const;

 private:
  mutable std::mutex mu_;
  ByteBudgetLru<Rows> lru_;
};

}  // namespace ned

#endif  // NED_CACHE_SUBTREE_CACHE_H_
