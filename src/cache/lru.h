/// \file lru.h
/// \brief Byte-budgeted LRU map, the shared eviction engine of src/cache/.
///
/// Both caches of this PR (SubtreeCache over materialized evaluator outputs,
/// AnswerCache over complete AnswerSummary results) are bounded by *bytes*,
/// not entry counts, because their values vary by orders of magnitude (a
/// two-row select output vs a 90k-row cross join). Keys are full canonical
/// strings rather than 64-bit digests, so equal keys imply equal cached
/// content by construction -- no hash-collision audit needed -- and key bytes
/// are charged against the budget alongside value bytes.
///
/// The container itself is single-threaded; SubtreeCache / AnswerCache wrap
/// it with their own mutex (one lock per cache, audited under TSan by the
/// cache-enabled CI configuration).

#ifndef NED_CACHE_LRU_H_
#define NED_CACHE_LRU_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace ned {

/// Hit/miss/occupancy counters of one ByteBudgetLru. Monotone except
/// `entries`/`bytes`, which track current occupancy.
struct LruStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;          ///< entries evicted to make room
  uint64_t rejected_oversized = 0; ///< values larger than the whole budget
  size_t entries = 0;
  size_t bytes = 0;
  size_t byte_budget = 0;
};

/// String-keyed LRU bounded by an approximate byte budget. `V` must be
/// cheaply copyable (the caches store shared_ptr values, so Get hands out a
/// reference-counted alias and eviction can never invalidate live readers).
template <typename V>
class ByteBudgetLru {
 public:
  /// `byte_budget` == 0 disables the cache: every Get misses, every Put is
  /// rejected. This is the "cache off" configuration knob.
  explicit ByteBudgetLru(size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Looks up `key`, refreshing its recency on a hit.
  std::optional<V> Get(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts (or replaces) `key`, charging `key.size() + value_bytes +
  /// kEntryOverhead` against the budget and evicting least-recently-used
  /// entries until the new total fits. A value that cannot fit even in an
  /// empty cache is rejected rather than flushing everything else.
  void Put(std::string key, V value, size_t value_bytes) {
    const size_t cost = key.size() + value_bytes + kEntryOverhead;
    if (cost > byte_budget_) {
      ++stats_.rejected_oversized;
      return;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      order_.erase(it->second);
      index_.erase(it);
      --stats_.entries;
    }
    while (bytes_ + cost > byte_budget_ && !order_.empty()) {
      EvictOldest();
    }
    order_.push_front(Entry{key, std::move(value), cost});
    index_.emplace(std::move(key), order_.begin());
    bytes_ += cost;
    ++stats_.inserts;
    ++stats_.entries;
  }

  void Clear() {
    order_.clear();
    index_.clear();
    bytes_ = 0;
    stats_.entries = 0;
  }

  LruStats stats() const {
    LruStats s = stats_;
    s.bytes = bytes_;
    s.byte_budget = byte_budget_;
    return s;
  }

  size_t bytes() const { return bytes_; }
  size_t entries() const { return order_.size(); }
  size_t byte_budget() const { return byte_budget_; }

  /// Fixed per-entry charge covering the list node, the index slot and the
  /// bookkeeping fields -- keeps tiny values from being accounted as free.
  static constexpr size_t kEntryOverhead = 64;

 private:
  struct Entry {
    std::string key;
    V value;
    size_t bytes = 0;
  };

  void EvictOldest() {
    const Entry& victim = order_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    order_.pop_back();
    ++stats_.evictions;
    --stats_.entries;
  }

  size_t byte_budget_;
  size_t bytes_ = 0;
  std::list<Entry> order_;  ///< front = most recently used
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
  LruStats stats_;
};

}  // namespace ned

#endif  // NED_CACHE_LRU_H_
