#include "cache/answer_cache.h"

#include <cctype>

#include "common/strings.h"

namespace ned {

namespace {

size_t ApproxStringsBytes(const std::vector<std::string>& v) {
  size_t bytes = sizeof(v) + v.size() * sizeof(std::string);
  for (const std::string& s : v) bytes += s.size();
  return bytes;
}

size_t ApproxAnswerBytes(const CachedAnswer& a) {
  return sizeof(CachedAnswer) + ApproxStringsBytes(a.summary.detailed) +
         ApproxStringsBytes(a.summary.condensed) +
         ApproxStringsBytes(a.summary.secondary) +
         a.summary.completeness.size() + a.summary.degradation.size();
}

}  // namespace

std::string NormalizeSqlText(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (char c : sql) {
    if (in_string) {
      out += c;
      if (c == '\'') in_string = false;
      continue;
    }
    if (c == '\'') {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      out += c;
      in_string = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

std::string MakeAnswerCacheKey(const std::string& db_name,
                               uint64_t snapshot_version,
                               const std::string& sql,
                               const std::string& question_text,
                               size_t row_budget, size_t memory_budget,
                               uint32_t option_bits) {
  // Every variable-length field is length-prefixed, so no crafted SQL or
  // question text can alias another key.
  const std::string norm = NormalizeSqlText(sql);
  return StrCat("db=", db_name.size(), ":", db_name, "|v=", snapshot_version,
                "|q=", norm.size(), ":", norm, "|w=", question_text.size(),
                ":", question_text, "|rb=", row_budget, "|mb=", memory_budget,
                "|o=", option_bits);
}

AnswerCache::Ptr AnswerCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto hit = lru_.Get(key);
  return hit.has_value() ? *hit : nullptr;
}

void AnswerCache::Insert(const std::string& key, Ptr answer) {
  if (answer == nullptr) return;
  const size_t bytes = ApproxAnswerBytes(*answer);
  std::lock_guard<std::mutex> lock(mu_);
  lru_.Put(key, std::move(answer), bytes);
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.Clear();
}

LruStats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.stats();
}

}  // namespace ned
