/// \file answer_cache.h
/// \brief Content-addressed cache of complete why-not answers.
///
/// Distinct from the service's idempotency-key cache: that one maps a
/// *request key* to the response already produced for it (exactly-once
/// delivery); this one maps the request's *content* -- (db name, catalog
/// snapshot version, normalized SQL, why-not question, budgets class,
/// engine-option bits) -- to an AnswerSummary, so a brand-new request key
/// asking an already-answered question is served without admission, queueing
/// or evaluation. Embedding the snapshot version in the key makes ReloadCsv /
/// SwapDatabase invalidation automatic: a bumped catalog version simply stops
/// producing the old keys, and stale entries age out of the LRU.
///
/// Only *complete* answers are ever inserted (completeness == full). A
/// partial answer reflects the budgets and deadline of the run that produced
/// it, not the data, and must never be replayed as authoritative; see
/// docs/CACHING.md.

#ifndef NED_CACHE_ANSWER_CACHE_H_
#define NED_CACHE_ANSWER_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "cache/lru.h"
#include "core/report.h"

namespace ned {

/// Whitespace-collapsed, case-folded (outside single-quoted string literals)
/// SQL text, with trailing semicolons dropped. Two spellings of one query --
/// "SELECT  R.v FROM R" vs "select r.v from r" -- normalize identically;
/// string literals keep their exact bytes and case.
std::string NormalizeSqlText(const std::string& sql);

/// Builds the content key. `question_text` is WhyNotQuestion::ToString();
/// `option_bits` packs the engine options that change the answer
/// (early termination changes nothing semantically but compute_secondary
/// adds answer parts, so both are keyed for bit-identical replay). Budgets
/// are the *resolved* per-request values -- requests in different budget
/// classes never share an entry, because a larger budget can turn a partial
/// answer into a complete one.
std::string MakeAnswerCacheKey(const std::string& db_name,
                               uint64_t snapshot_version,
                               const std::string& sql,
                               const std::string& question_text,
                               size_t row_budget, size_t memory_budget,
                               uint32_t option_bits);

/// One cached complete answer plus the snapshot version it was computed on
/// (kept for auditing; the key already pins it).
struct CachedAnswer {
  AnswerSummary summary;
  uint64_t snapshot_version = 0;
};

/// Shared, bounded, thread-safe answer cache.
class AnswerCache {
 public:
  using Ptr = std::shared_ptr<const CachedAnswer>;

  explicit AnswerCache(size_t byte_budget) : lru_(byte_budget) {}

  /// Returns the cached answer for `key`, or nullptr on a miss.
  Ptr Lookup(const std::string& key);

  /// Caches a complete answer. Callers must enforce the completeness gate
  /// (the service asserts summary.complete before inserting).
  void Insert(const std::string& key, Ptr answer);

  void Clear();

  LruStats stats() const;

 private:
  mutable std::mutex mu_;
  ByteBudgetLru<Ptr> lru_;
};

}  // namespace ned

#endif  // NED_CACHE_ANSWER_CACHE_H_
