#include "cache/subtree_cache.h"

namespace ned {

SubtreeCache::Rows SubtreeCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto hit = lru_.Get(key);
  return hit.has_value() ? *hit : nullptr;
}

void SubtreeCache::Insert(const std::string& key, Rows rows) {
  if (rows == nullptr) return;
  size_t bytes = sizeof(std::vector<TraceTuple>);
  for (const TraceTuple& t : *rows) bytes += ApproxTraceTupleBytes(t);
  std::lock_guard<std::mutex> lock(mu_);
  lru_.Put(key, std::move(rows), bytes);
}

void SubtreeCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.Clear();
}

LruStats SubtreeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.stats();
}

}  // namespace ned
