/// \file ned_metrics.cpp
/// \brief Exposition CLI for the observability layer (docs/OBSERVABILITY.md).
///
/// Drives the why-not service over the paper's 19 use cases (one traced
/// request each) and dumps the resulting metrics registry in Prometheus text
/// exposition 0.0.4 or the stable-order JSON form -- a quick way to see the
/// full metric catalog with live values, and the scrape-format smoke test
/// the CI golden files pin at the unit level.
///
/// `--trace CASE` instead prints the rendered span tree (names, nesting and
/// per-span durations) of one traced request for that use case -- the Fig. 5
/// phase breakdown, span by span. `--trace all` renders every case.
///
/// Usage:
///   ned_metrics [--format prometheus|json] [--out FILE]
///   ned_metrics --trace CASE|all [--structure]
///
/// `--structure` renders names and nesting only (no durations): the
/// byte-identity artifact the serial-vs-parallel determinism tests compare.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/status.h"
#include "datasets/use_cases.h"
#include "obs/expose.h"
#include "obs/trace.h"
#include "relational/catalog.h"
#include "service/service.h"

namespace {

using ned::Catalog;
using ned::UseCase;
using ned::UseCaseRegistry;
using ned::WhyNotService;

int TraceMode(const UseCaseRegistry& registry, const std::string& which,
              bool structure_only) {
  bool found = false;
  for (const UseCase& uc : registry.use_cases()) {
    if (which != "all" && which != uc.name) continue;
    found = true;
    auto tree = registry.BuildTree(uc);
    if (!tree.ok()) {
      std::cerr << uc.name << ": " << tree.status().ToString() << "\n";
      return 1;
    }
    ned::QueryTree query_tree = std::move(tree).value();
    auto engine = ned::NedExplainEngine::Create(
        &query_tree, &registry.database(uc.db_name));
    if (!engine.ok()) {
      std::cerr << uc.name << ": " << engine.status().ToString() << "\n";
      return 1;
    }
    ned::obs::Trace trace;
    ned::ExecContext ctx;
    ctx.set_trace(&trace);
    auto result = engine->Explain(uc.question, &ctx);
    if (!result.ok()) {
      std::cerr << uc.name << ": " << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "== " << uc.name << " ==\n"
              << (structure_only ? trace.RenderStructure() : trace.Render());
  }
  if (!found) {
    std::cerr << "unknown use case \"" << which << "\" (try --trace all)\n";
    return 2;
  }
  return 0;
}

int ExposeMode(const UseCaseRegistry& registry, const std::string& format,
               const std::string& out_path) {
  // One service, one completed request per use case: every admission,
  // execution and finalization counter/histogram picks up real traffic.
  auto catalog = std::make_shared<Catalog>();
  for (const char* db_name : {"crime", "imdb", "gov"}) {
    ned::Database copy = registry.database(db_name);
    NED_CHECK(catalog->Register(db_name, std::move(copy)).ok());
  }
  ned::ServiceOptions options;
  options.workers = 2;
  WhyNotService service(catalog, options);
  for (const UseCase& uc : registry.use_cases()) {
    ned::WhyNotRequest request;
    request.key = "ned_metrics-" + uc.name;
    request.client_id = "ned_metrics";
    request.db_name = uc.db_name;
    request.sql = uc.sql;
    request.question = uc.question;
    WhyNotService::Submission sub = service.Submit(std::move(request));
    if (!sub.status.ok()) {
      std::cerr << uc.name << ": " << sub.status.ToString() << "\n";
      continue;
    }
    (void)sub.response.get();
  }
  service.Shutdown(/*drain=*/true);

  const std::vector<ned::obs::MetricSnapshot> snapshot =
      service.metrics()->Collect();
  const std::string text = format == "json"
                               ? ned::obs::FormatJson(snapshot)
                               : ned::obs::FormatPrometheus(snapshot);
  if (out_path.empty()) {
    std::cout << text;
  } else {
    ned::Status status = ned::AtomicWriteFile(out_path, text);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << " (" << text.size() << " bytes)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "prometheus";
  std::string out_path;
  std::string trace_case;
  bool structure_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "prometheus" && format != "json") {
        std::cerr << "unknown format \"" << format << "\"\n";
        return 2;
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_case = argv[++i];
    } else if (arg == "--structure") {
      structure_only = true;
    } else {
      std::cerr << "usage: ned_metrics [--format prometheus|json] "
                   "[--out FILE] | --trace CASE|all [--structure]\n";
      return 2;
    }
  }

  auto registry = ned::UseCaseRegistry::Build();
  if (!registry.ok()) {
    std::cerr << registry.status().ToString() << "\n";
    return 1;
  }
  if (!trace_case.empty()) {
    return TraceMode(*registry, trace_case, structure_only);
  }
  return ExposeMode(*registry, format, out_path);
}
