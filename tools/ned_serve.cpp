/// \file ned_serve.cpp
/// \brief The HTTP serving binary: WhyNotService behind src/net/ on a port.
///
/// Builds the paper's three evaluation databases (crime/imdb/gov,
/// datasets/use_cases.h), registers them in a Catalog, and serves
/// POST /v1/whynot plus /metrics, /healthz and /readyz until a drain
/// signal arrives. The shutdown sequence is the documented operator
/// contract (docs/NETWORK.md):
///
///   SIGTERM/SIGINT -> /readyz flips 503 and new connections are refused
///   -> grace period so load balancers observe the flip -> service Drain
///   (in-flight completes, queued journaled-recoverable with persistence
///   on) -> responses flush -> exit 0 with balanced books.
///
/// `--port 0` binds an ephemeral port; the "listening on" line printed to
/// stdout carries the real one (ned_loadgen --smoke parses it).

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/signal_drain.h"
#include "common/strings.h"
#include "datasets/use_cases.h"
#include "net/server.h"
#include "relational/catalog.h"
#include "service/service.h"

namespace {

using ned::Catalog;
using ned::ServiceOptions;
using ned::Status;
using ned::WhyNotService;

struct Args {
  std::string host = "127.0.0.1";
  int port = 8080;
  int workers = 4;
  size_t queue = 64;
  int threads_per_request = 1;
  int scale = 1;
  size_t max_connections = 256;
  int64_t idle_timeout_ms = 30'000;
  int64_t header_timeout_ms = 5'000;
  int64_t drain_grace_ms = 100;
  int64_t drain_deadline_ms = 5'000;
  int64_t default_deadline_ms = 2'000;
  std::string persist_dir;
};

void Usage() {
  std::cerr
      << "ned_serve: HTTP frontend for the why-not service\n"
         "  --host H                listen address (default 127.0.0.1)\n"
         "  --port N                listen port; 0 = ephemeral (default 8080)\n"
         "  --workers N             service worker pool size (default 4)\n"
         "  --queue N               admission queue capacity (default 64)\n"
         "  --threads N             intra-query threads per request (default 1)\n"
         "  --scale N               dataset scale factor (default 1)\n"
         "  --max-connections N     open-connection cap (default 256)\n"
         "  --idle-timeout-ms N     keep-alive idle eviction (default 30000)\n"
         "  --header-timeout-ms N   slowloris bound (default 5000)\n"
         "  --deadline-ms N         default request deadline (default 2000)\n"
         "  --drain-grace-ms N      readyz-flip grace before Drain (default 100)\n"
         "  --drain-deadline-ms N   Drain deadline for running work (default 5000)\n"
         "  --persist DIR           journal + answer store root (default off)\n";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      args->host = v;
    } else if (arg == "--port" && (v = next())) {
      args->port = std::atoi(v);
    } else if (arg == "--workers" && (v = next())) {
      args->workers = std::atoi(v);
    } else if (arg == "--queue" && (v = next())) {
      args->queue = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--threads" && (v = next())) {
      args->threads_per_request = std::atoi(v);
    } else if (arg == "--scale" && (v = next())) {
      args->scale = std::atoi(v);
    } else if (arg == "--max-connections" && (v = next())) {
      args->max_connections = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--idle-timeout-ms" && (v = next())) {
      args->idle_timeout_ms = std::atoll(v);
    } else if (arg == "--header-timeout-ms" && (v = next())) {
      args->header_timeout_ms = std::atoll(v);
    } else if (arg == "--deadline-ms" && (v = next())) {
      args->default_deadline_ms = std::atoll(v);
    } else if (arg == "--drain-grace-ms" && (v = next())) {
      args->drain_grace_ms = std::atoll(v);
    } else if (arg == "--drain-deadline-ms" && (v = next())) {
      args->drain_deadline_ms = std::atoll(v);
    } else if (arg == "--persist" && (v = next())) {
      args->persist_dir = v;
    } else {
      Usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  ned::InstallDrainSignalHandlers();

  auto registry = ned::UseCaseRegistry::Build(args.scale);
  if (!registry.ok()) {
    std::cerr << "ned_serve: failed to build datasets: "
              << registry.status().ToString() << "\n";
    return 1;
  }
  auto catalog = std::make_shared<Catalog>();
  for (const char* name : {"crime", "imdb", "gov"}) {
    ned::Database copy = registry->database(name);
    if (!catalog->Register(name, std::move(copy)).ok()) return 1;
  }

  ServiceOptions service_options;
  service_options.workers = args.workers;
  service_options.queue_capacity = args.queue;
  service_options.threads_per_request = args.threads_per_request;
  service_options.default_deadline_ms = args.default_deadline_ms;
  service_options.persist_dir = args.persist_dir;
  WhyNotService service(catalog, service_options);
  if (!args.persist_dir.empty()) {
    const WhyNotService::RecoveryReport rec = service.Recover();
    if (rec.replayed_records > 0) {
      std::cout << "ned_serve: recovered journal (replayed="
                << rec.replayed_records << " pending=" << rec.pending_found
                << " from_store=" << rec.served_from_store
                << " resubmitted=" << rec.resubmitted << ")\n";
    }
  }

  ned::net::ServerOptions server_options;
  server_options.host = args.host;
  server_options.port = args.port;
  server_options.max_connections = args.max_connections;
  server_options.idle_timeout_ms = args.idle_timeout_ms;
  server_options.header_timeout_ms = args.header_timeout_ms;
  ned::net::HttpServer server(&service, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "ned_serve: " << started.ToString() << "\n";
    return 1;
  }
  // The harness contract: this exact line, with the bound (possibly
  // ephemeral) port, before any serving output.
  std::cout << "ned_serve: listening on " << args.host << ":" << server.port()
            << std::endl;

  while (!ned::DrainRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Drain sequence -- each step is observable from outside.
  std::cout << "ned_serve: drain requested" << std::endl;
  server.BeginDrain();  // readyz -> 503, new connections refused
  std::this_thread::sleep_for(std::chrono::milliseconds(args.drain_grace_ms));
  const WhyNotService::DrainReport report = service.Drain(args.drain_deadline_ms);
  // In-flight completions resolved during Drain still need their bytes
  // flushed to connected clients; one more grace tick covers the loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(args.drain_grace_ms));
  server.Stop();
  std::cout << "ned_serve: drained (completed_inflight="
            << report.completed_inflight
            << " journaled_queued=" << report.journaled_queued
            << " cancelled=" << report.cancelled << ")" << std::endl;
  return 0;
}
