/// \file ned_loadgen.cpp
/// \brief Wire-level load generator for the HTTP serving edge.
///
/// Drives real TCP connections against ned_serve (or any ned HTTP
/// frontend): N client threads, each with one keep-alive connection,
/// walking the 19 paper use cases and POSTing them as JSON wire bodies.
/// Every logical request carries a stable idempotency key and is retried
/// on 503 exactly as the protocol prescribes -- sleep Retry-After-Ms, then
/// resubmit the same key -- so a run PASSes only if overload converges at
/// the wire: every request eventually gets its answer, every response
/// carries the key it was asked for (zero lost or crossed responses), and
/// nothing crashes.
///
/// `--smoke` is the CI entry point: fork/exec ned_serve on an ephemeral
/// port (parsed from its "listening on" stdout line), run a small load
/// with a queue sized to force sheds, SIGTERM the child and require a
/// clean drain (exit 0). `--out FILE` emits BENCH_net.json-shaped stats
/// (requests, ok, retries, p50_ms, p99_ms).

#include <arpa/inet.h>
#include <libgen.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "datasets/use_cases.h"
#include "net/http.h"
#include "net/wire.h"
#include "service/request.h"

namespace {

using ned::StatusCode;
using ned::UseCase;
using ned::WhyNotRequest;
using ned::net::HttpResponse;
using ned::net::ParseHttpResponse;

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;
  int rounds = 3;  ///< passes over the 19 use cases per connection
  int max_attempts = 200;
  int64_t deadline_ms = 5'000;
  int scale = 1;
  /// Sets bypass_answer_cache on every request so repeats re-execute --
  /// without it the content-addressed cache absorbs the load and nothing
  /// sheds (smoke turns this on to force the 503/Retry-After path).
  bool bypass_cache = false;
  std::string out_path;
  bool smoke = false;
  std::string serve_bin;
};

struct Stats {
  uint64_t requests = 0;  ///< logical requests completed (key answered)
  uint64_t ok = 0;        ///< wire 200s whose body decoded with code OK
  uint64_t retries = 0;   ///< 503-triggered resubmissions
  uint64_t reconnects = 0;
  uint64_t failures = 0;  ///< logical requests that never converged
  std::vector<double> latencies_ms;  ///< submit -> answered, retries included
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

/// One blocking keep-alive client connection. The loadgen is the peer the
/// server defends against, so it stays deliberately simple: blocking
/// sockets, one request in flight.
class Client {
 public:
  Client(std::string host, int port)
      : host_(std::move(host)), port_(port) {}
  ~Client() { Close(); }

  bool Connect() {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Close();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    buffer_.clear();
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return fd_ >= 0; }

  bool SendAll(std::string_view data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads exactly one response; false on EOF/error (caller reconnects).
  bool ReadResponse(HttpResponse* out) {
    char chunk[16 * 1024];
    while (true) {
      if (!buffer_.empty()) {
        auto parsed = ParseHttpResponse(buffer_, out);
        if (!parsed.ok()) return false;  // malformed server bytes: fatal
        if (*parsed > 0) {
          buffer_.erase(0, *parsed);
          return true;
        }
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  std::string host_;
  int port_;
  int fd_ = -1;
  std::string buffer_;  ///< unconsumed bytes past the last response
};

int64_t RetryAfterMs(const HttpResponse& response) {
  std::string_view ms = response.Header("retry-after-ms");
  if (!ms.empty()) {
    const int64_t v = std::atoll(std::string(ms).c_str());
    if (v > 0) return v;
  }
  std::string_view secs = response.Header("retry-after");
  if (!secs.empty()) {
    const int64_t v = std::atoll(std::string(secs).c_str());
    if (v > 0) return v * 1000;
  }
  return 5;
}

/// Runs `rounds` passes over the use cases on one connection; appends into
/// `stats` under `mu`. Returns false if any logical request failed to
/// converge or the server misbehaved.
bool RunWorker(const Args& args, int worker_id,
               const std::vector<const UseCase*>& cases, Stats* stats,
               std::mutex* mu) {
  Client client(args.host, args.port);
  if (!client.Connect()) {
    std::cerr << "loadgen[" << worker_id << "]: connect failed\n";
    return false;
  }
  Stats local;
  bool all_converged = true;
  for (int round = 0; round < args.rounds; ++round) {
    for (size_t ci = 0; ci < cases.size(); ++ci) {
      const UseCase& uc = *cases[ci];
      WhyNotRequest request;
      request.key =
          ned::StrCat("lg-", worker_id, "-", round, "-", uc.name);
      request.db_name = uc.db_name;
      request.sql = uc.sql;
      request.question = uc.question;
      request.client_id = ned::StrCat("loadgen-", worker_id);
      request.deadline_ms = args.deadline_ms;
      request.bypass_answer_cache = args.bypass_cache;
      const std::string body = ned::net::RenderWhyNotRequestJson(request);
      const std::string http = ned::StrCat(
          "POST /v1/whynot HTTP/1.1\r\nHost: ", args.host,
          "\r\nContent-Type: application/json\r\nContent-Length: ",
          body.size(), "\r\n\r\n", body);

      const auto start = std::chrono::steady_clock::now();
      bool answered = false;
      for (int attempt = 0; attempt < args.max_attempts && !answered;
           ++attempt) {
        if (!client.connected() && !client.Connect()) {
          ++local.reconnects;
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        HttpResponse response;
        if (!client.SendAll(http) || !client.ReadResponse(&response)) {
          // Server closed (drain, slow-client cap, ...): reconnect and
          // resubmit the same key -- idempotency makes this safe.
          client.Close();
          ++local.reconnects;
          continue;
        }
        if (response.status == 503) {
          ++local.retries;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(RetryAfterMs(response)));
          continue;
        }
        if (response.status != 200) {
          std::cerr << "loadgen[" << worker_id << "]: unexpected status "
                    << response.status << " for " << uc.name << ": "
                    << response.body << "\n";
          break;
        }
        auto wire = ned::net::ParseWhyNotResponseJson(response.body);
        if (!wire.ok()) {
          std::cerr << "loadgen[" << worker_id
                    << "]: undecodable response body: "
                    << wire.status().ToString() << "\n";
          break;
        }
        if (wire->key != request.key) {
          std::cerr << "loadgen[" << worker_id << "]: response key mismatch: "
                    << wire->key << " != " << request.key << "\n";
          break;
        }
        if (wire->code != StatusCode::kOk) {
          std::cerr << "loadgen[" << worker_id << "]: request " << uc.name
                    << " resolved " << ned::StatusCodeName(wire->code) << ": "
                    << wire->message << "\n";
          break;
        }
        ++local.ok;
        answered = true;
      }
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (answered) {
        ++local.requests;
        local.latencies_ms.push_back(elapsed_ms);
      } else {
        ++local.failures;
        all_converged = false;
      }
    }
  }
  std::lock_guard<std::mutex> lock(*mu);
  stats->requests += local.requests;
  stats->ok += local.ok;
  stats->retries += local.retries;
  stats->reconnects += local.reconnects;
  stats->failures += local.failures;
  stats->latencies_ms.insert(stats->latencies_ms.end(),
                             local.latencies_ms.begin(),
                             local.latencies_ms.end());
  return all_converged;
}

/// Drives the load; returns 0 on full convergence.
int RunLoad(const Args& args) {
  auto registry = ned::UseCaseRegistry::Build(args.scale);
  if (!registry.ok()) {
    std::cerr << "loadgen: failed to build use cases: "
              << registry.status().ToString() << "\n";
    return 1;
  }
  std::vector<const UseCase*> cases;
  for (const UseCase& uc : registry->use_cases()) cases.push_back(&uc);

  Stats stats;
  std::mutex mu;
  std::atomic<int> failed{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(args.connections));
  for (int w = 0; w < args.connections; ++w) {
    workers.emplace_back([&, w]() {
      if (!RunWorker(args, w, cases, &stats, &mu)) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  const double p50 = Percentile(stats.latencies_ms, 0.50);
  const double p99 = Percentile(stats.latencies_ms, 0.99);
  std::cout << "loadgen: requests=" << stats.requests << " ok=" << stats.ok
            << " retries=" << stats.retries
            << " reconnects=" << stats.reconnects
            << " failures=" << stats.failures << " p50_ms=" << p50
            << " p99_ms=" << p99 << std::endl;

  if (!args.out_path.empty()) {
    std::ofstream out(args.out_path);
    out << "{\n"
        << "  \"benchmark\": \"net_loadgen\",\n"
        << "  \"connections\": " << args.connections << ",\n"
        << "  \"requests\": " << stats.requests << ",\n"
        << "  \"ok\": " << stats.ok << ",\n"
        << "  \"retries\": " << stats.retries << ",\n"
        << "  \"reconnects\": " << stats.reconnects << ",\n"
        << "  \"failures\": " << stats.failures << ",\n"
        << "  \"p50_ms\": " << p50 << ",\n"
        << "  \"p99_ms\": " << p99 << "\n"
        << "}\n";
  }

  if (failed.load() != 0 || stats.failures != 0) {
    std::cerr << "loadgen: FAIL -- " << stats.failures
              << " request(s) never converged\n";
    return 1;
  }
  const uint64_t expected = static_cast<uint64_t>(args.connections) *
                            static_cast<uint64_t>(args.rounds) * cases.size();
  if (stats.requests != expected) {
    std::cerr << "loadgen: FAIL -- expected " << expected
              << " answered requests, got " << stats.requests << "\n";
    return 1;
  }
  std::cout << "loadgen: PASS -- all " << expected
            << " requests answered, sheds converged at the wire" << std::endl;
  return 0;
}

/// --smoke: spawn ned_serve on an ephemeral port, load it, drain it.
int RunSmoke(Args args) {
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) {
    std::perror("loadgen: pipe");
    return 1;
  }
  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("loadgen: fork");
    return 1;
  }
  if (child == 0) {
    ::close(out_pipe[0]);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[1]);
    // Tiny queue + small pool so the smoke run actually sheds: the retry
    // loop (Retry-After-Ms) is exercised, not just the happy path.
    ::execl(args.serve_bin.c_str(), args.serve_bin.c_str(), "--port", "0",
            "--workers", "2", "--queue", "4", "--scale", "1",
            "--deadline-ms", "10000", static_cast<char*>(nullptr));
    std::perror("loadgen: execl ned_serve");
    _exit(127);
  }
  ::close(out_pipe[1]);

  // Parse "ned_serve: listening on 127.0.0.1:PORT" from the child's stdout.
  std::string banner;
  int port = 0;
  char c;
  while (port == 0 && ::read(out_pipe[0], &c, 1) == 1) {
    if (c != '\n') {
      banner += c;
      continue;
    }
    const size_t at = banner.find("listening on ");
    if (at != std::string::npos) {
      const size_t colon = banner.rfind(':');
      if (colon != std::string::npos) port = std::atoi(banner.c_str() + colon + 1);
    }
    banner.clear();
  }
  if (port == 0) {
    std::cerr << "loadgen: never saw the listening banner from "
              << args.serve_bin << "\n";
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
    return 1;
  }
  std::cout << "loadgen: smoke server on port " << port << std::endl;

  args.port = port;
  // More blocking clients than the child's capacity (2 workers + queue 4)
  // and no answer-cache absorption: the opening burst must shed, so the
  // smoke proves the 503 -> Retry-After-Ms -> resubmit loop converges.
  args.connections = 12;
  args.rounds = 2;
  args.bypass_cache = true;
  const int load_rc = RunLoad(args);

  // Drain: SIGTERM must produce a clean exit 0 (readyz flip -> Drain ->
  // flush -> exit), never a crash or a hang.
  ::kill(child, SIGTERM);
  int wait_status = 0;
  ::waitpid(child, &wait_status, 0);
  ::close(out_pipe[0]);
  const bool clean =
      WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0;
  if (!clean) {
    std::cerr << "loadgen: FAIL -- ned_serve did not drain cleanly (status "
              << wait_status << ")\n";
    return 1;
  }
  std::cout << "loadgen: smoke drain clean" << std::endl;
  return load_rc;
}

void Usage() {
  std::cerr
      << "ned_loadgen: wire-level load generator for the HTTP frontend\n"
         "  --host H            server address (default 127.0.0.1)\n"
         "  --port N            server port (required unless --smoke)\n"
         "  --connections N     concurrent client connections (default 4)\n"
         "  --rounds N          passes over the 19 use cases (default 3)\n"
         "  --max-attempts N    retry budget per request (default 200)\n"
         "  --deadline-ms N     per-request deadline (default 5000)\n"
         "  --scale N           dataset scale for request bodies (default 1)\n"
         "  --bypass-cache      set bypass_answer_cache on every request\n"
         "  --out FILE          write BENCH_net.json-shaped stats\n"
         "  --smoke             spawn ned_serve, load it, SIGTERM, check exit\n"
         "  --serve-bin PATH    ned_serve binary for --smoke\n"
         "                      (default: <dir of ned_loadgen>/ned_serve)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      args.host = v;
    } else if (arg == "--port" && (v = next())) {
      args.port = std::atoi(v);
    } else if (arg == "--connections" && (v = next())) {
      args.connections = std::atoi(v);
    } else if (arg == "--rounds" && (v = next())) {
      args.rounds = std::atoi(v);
    } else if (arg == "--max-attempts" && (v = next())) {
      args.max_attempts = std::atoi(v);
    } else if (arg == "--deadline-ms" && (v = next())) {
      args.deadline_ms = std::atoll(v);
    } else if (arg == "--scale" && (v = next())) {
      args.scale = std::atoi(v);
    } else if (arg == "--bypass-cache") {
      args.bypass_cache = true;
    } else if (arg == "--out" && (v = next())) {
      args.out_path = v;
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--serve-bin" && (v = next())) {
      args.serve_bin = v;
    } else {
      Usage();
      return 2;
    }
  }
  if (args.smoke) {
    if (args.serve_bin.empty()) {
      std::string self(argv[0]);
      std::vector<char> copy(self.begin(), self.end());
      copy.push_back('\0');
      args.serve_bin = ned::StrCat(::dirname(copy.data()), "/ned_serve");
    }
    return RunSmoke(args);
  }
  if (args.port == 0) {
    Usage();
    return 2;
  }
  return RunLoad(args);
}
