/// \file ned_crashtest.cpp
/// \brief Kill-and-recover harness: proves the durability layer's
/// exactly-once contract across process crashes (docs/DURABILITY.md).
///
/// Two batteries, both over the paper's use cases:
///
/// 1. Simulated crash points. Drives the Journal and AnswerStore through
///    every CrashPoint (persist/crash_point.h) with a CrashInjector and
///    re-opens the directory as a fresh process would, asserting:
///      - journal recovery always yields the *exact prefix* of acked
///        (Append-returned-OK) records -- never a lost acked record, never
///        a fabricated or resurrected one, for torn tails, unsynced
///        rollbacks and interrupted rotations alike;
///      - the journal fails closed after an IO crash (no silent appends);
///      - an interrupted store Put leaves either no entry or a complete
///        byte-identical entry -- never a torn or fabricated answer -- and
///        entries acked before the crash always survive it.
///
/// 2. Real SIGKILL. Each cycle forks this binary in `--child-serve` mode:
///    the child runs a persistent WhyNotService over the shared directory,
///    recovers whatever earlier cycles left, serves the case list in a loop
///    and appends an fsynced ack line (key, case index, FNV-64 of the
///    encoded AnswerSummary) for every completed full-fidelity answer a
///    client actually received. The parent SIGKILLs it at a varying point
///    mid-serving, then recovers in-process and asserts, for every acked
///    request:
///      - zero lost acks: resubmitting the acked key yields an answer
///        again (restored idempotency book or durable store);
///      - byte-identical: the recovered encoded AnswerSummary hashes to
///        exactly the acked hash, and its content matches an uninterrupted
///        baseline run;
///      - zero duplicate client-visible executions: verifying every acked
///        key accepts no new work (stats.accepted is unchanged), so no
///        acked request ever re-executes after the crash.
///    Cycles share one directory, so recovery is also proven to compose:
///    every restart replays, compacts and re-journals the previous ones'
///    surviving state. Default 50 cycles; `--smoke` is the CI-sized run.
///
/// SIGTERM/SIGINT ask the harness to stop: the parent finishes the current
/// cycle, and a serving child drains gracefully (finish in-flight, journal
/// the rest) instead of dying mid-request.
///
/// Exit code 0 on success, 1 on any violated invariant, 2 on usage errors.

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.h"
#include "common/csv.h"
#include "common/signal_drain.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/strings.h"
#include "datasets/use_cases.h"
#include "persist/answer_store.h"
#include "persist/crash_point.h"
#include "persist/journal.h"
#include "persist/wire.h"
#include "relational/catalog.h"
#include "service/service.h"

namespace {

using ned::AnswerStore;
using ned::AnswerStoreOptions;
using ned::AnswerSummary;
using ned::Catalog;
using ned::CrashInjector;
using ned::CrashPoint;
using ned::Journal;
using ned::JournalOptions;
using ned::JournalRecord;
using ned::JournalRecordType;
using ned::ServiceOptions;
using ned::Status;
using ned::StatusCode;
using ned::StoreManifestEntry;
using ned::WhyNotRequest;
using ned::WhyNotResponse;
using ned::WhyNotService;

/// SIGTERM/SIGINT via the shared common/signal_drain.h helper; checked at
/// cycle boundaries (parent) and in the serve loop (child, which then
/// drains instead of dying).
bool StopRequested() { return ned::DrainRequested(); }

struct Args {
  int cycles = 50;
  bool smoke = false;
  bool keep = false;         ///< keep the work dir for post-mortem
  std::string dir;           ///< work dir (default: a fresh /tmp dir)
  // Child mode (internal): serve the shared dir until killed.
  bool child_serve = false;
  std::string child_dir;
  int child_cycle = 0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cycles" && i + 1 < argc) {
      args->cycles = std::atoi(argv[++i]);
    } else if (arg == "--dir" && i + 1 < argc) {
      args->dir = argv[++i];
    } else if (arg == "--smoke") {
      args->smoke = true;
      args->cycles = 6;
    } else if (arg == "--keep") {
      args->keep = true;
    } else if (arg == "--child-serve" && i + 2 < argc) {
      args->child_serve = true;
      args->child_dir = argv[++i];
      args->child_cycle = std::atoi(argv[++i]);
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: ned_crashtest [--cycles N] [--dir D] [--keep] "
                   "[--smoke]\n";
      return false;
    }
  }
  return true;
}

/// Recursive rm -rf via dirent (the repo avoids <filesystem>).
void RemoveTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir != nullptr) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat st;
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTree(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}

/// FNV-64 of the full encoded AnswerSummary: the byte-identity fingerprint
/// a child acks and the verifier must reproduce after recovery.
uint64_t FullHash(const AnswerSummary& summary) {
  std::string bytes;
  ned::EncodeAnswerSummary(summary, &bytes);
  return ned::Fnv1a64(bytes);
}

/// Hash of the answer *content* only: excludes the subtree-cache counters,
/// which describe the computation (and legitimately differ between a cold
/// baseline run and a recovery that replayed part of the work), not the
/// answer. Used to compare recovered answers against the uninterrupted
/// baseline; FullHash covers the stricter acked-vs-recovered identity.
uint64_t ContentHash(const AnswerSummary& summary) {
  std::string bytes;
  for (const std::string& s : summary.detailed) ned::wire::PutStr(&bytes, s);
  for (const std::string& s : summary.condensed) ned::wire::PutStr(&bytes, s);
  for (const std::string& s : summary.secondary) ned::wire::PutStr(&bytes, s);
  ned::wire::PutU64(&bytes, summary.dir_total);
  ned::wire::PutU64(&bytes, summary.indir_total);
  ned::wire::PutU64(&bytes, summary.survivors_at_root);
  ned::wire::PutU8(&bytes, summary.complete ? 1 : 0);
  ned::wire::PutU8(&bytes, static_cast<uint8_t>(summary.tripped));
  ned::wire::PutStr(&bytes, summary.completeness);
  ned::wire::PutU8(&bytes, static_cast<uint8_t>(summary.degradation_level));
  ned::wire::PutStr(&bytes, summary.degradation);
  return ned::Fnv1a64(bytes);
}

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// ---------------------------------------------------------------------------
// Shared workload: the first kCases paper use cases, driven identically by
// the baseline, every child and every verifier.
// ---------------------------------------------------------------------------

constexpr size_t kCases = 6;

struct Workload {
  std::shared_ptr<Catalog> catalog;
  std::vector<ned::UseCase> cases;
};

bool BuildWorkload(Workload* out) {
  auto registry = ned::UseCaseRegistry::Build(/*scale=*/1);
  if (!registry.ok()) {
    std::cerr << "failed to build use cases: " << registry.status().ToString()
              << "\n";
    return false;
  }
  out->catalog = std::make_shared<Catalog>();
  for (const char* name : {"crime", "imdb", "gov"}) {
    ned::Database copy = registry->database(name);
    NED_CHECK(out->catalog->Register(name, std::move(copy)).ok());
  }
  const auto& all = registry->use_cases();
  for (size_t i = 0; i < all.size() && i < kCases; ++i) {
    out->cases.push_back(all[i]);
  }
  return !out->cases.empty();
}

WhyNotRequest CaseRequest(const Workload& wl, size_t case_idx,
                          std::string key) {
  const ned::UseCase& uc = wl.cases[case_idx];
  WhyNotRequest req;
  req.key = std::move(key);
  req.db_name = uc.db_name;
  req.sql = uc.sql;
  req.question = uc.question;
  req.deadline_ms = 5000;
  req.seed = ned::MixSeed(1, static_cast<uint64_t>(case_idx));
  return req;
}

ServiceOptions PersistentOptions(const std::string& dir) {
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  options.default_deadline_ms = 5000;
  options.persist_dir = dir;
  return options;
}

// ---------------------------------------------------------------------------
// Child mode: serve the shared directory until SIGKILLed (or drained).
// ---------------------------------------------------------------------------

int RunChildServe(const std::string& dir, int cycle) {
  ned::InstallDrainSignalHandlers();
  Workload wl;
  if (!BuildWorkload(&wl)) return 2;
  WhyNotService service(wl.catalog, PersistentOptions(dir));
  (void)service.Recover();
  // O_APPEND + fsync per line: an ack is on disk before the next request is
  // even submitted, so the parent can trust every line it reads back.
  const std::string acks_path = ned::StrCat(dir, "/acks-", cycle);
  const int fd = ::open(acks_path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                        0644);
  if (fd < 0) return 2;
  for (uint64_t j = 0; !StopRequested(); ++j) {
    for (size_t i = 0; i < wl.cases.size() && !StopRequested(); ++i) {
      const std::string key = ned::StrCat("c", cycle, "-i", i, "-j", j);
      WhyNotService::Submission sub =
          service.Submit(CaseRequest(wl, i, key));
      if (!sub.status.ok()) continue;
      const WhyNotResponse resp = sub.response.get();
      if (!resp.status.ok() || !resp.answer.complete ||
          resp.answer.degradation_level != 0) {
        continue;
      }
      // The client has the answer in hand: this is the ack the crash must
      // not lose and recovery must reproduce byte-identically.
      const std::string line =
          ned::StrCat(key, " ", i, " ", HexU64(FullHash(resp.answer)), "\n");
      if (::write(fd, line.data(), line.size()) !=
          static_cast<ssize_t>(line.size())) {
        return 2;
      }
      ::fsync(fd);
    }
  }
  ::close(fd);
  // Signal-requested stop: drain instead of dying -- in-flight work
  // finishes, queued work is journaled as recoverable.
  service.Drain(2000);
  return 0;
}

// ---------------------------------------------------------------------------
// Simulated crash-point battery.
// ---------------------------------------------------------------------------

struct FailCounter {
  int failures = 0;
  void operator()(const std::string& what) {
    std::cerr << "CRASHTEST VIOLATION: " << what << "\n";
    ++failures;
  }
};

/// One journal leg: append until the armed point fires, re-open, and assert
/// the recovered sequence is exactly the acked prefix.
void RunJournalCrashLeg(const std::string& base, CrashPoint point,
                        const char* name, int arm_count, FailCounter* fail) {
  const std::string dir = ned::StrCat(base, "/sim-journal-", name);
  RemoveTree(dir);
  CrashInjector injector;
  JournalOptions options;
  options.dir = dir;
  options.segment_bytes = 160;  // tiny: a few records per segment
  options.fsync = ned::FsyncPolicy::kEveryRecord;
  options.crash = &injector;
  std::vector<JournalRecord> recovered;
  auto journal = Journal::Open(options, &recovered);
  if (!journal.ok()) {
    (*fail)(ned::StrCat(name, ": open failed: ",
                        journal.status().ToString()));
    return;
  }
  if (!recovered.empty()) {
    (*fail)(ned::StrCat(name, ": fresh dir recovered ", recovered.size(),
                        " records"));
  }
  injector.Arm(point, arm_count);
  std::vector<std::string> acked;
  bool crashed = false;
  for (int i = 0; i < 40 && !crashed; ++i) {
    const std::string payload = ned::StrCat("record-", i);
    const Status st = (*journal)->Append(JournalRecordType::kAccept, payload);
    if (st.ok()) {
      acked.push_back(payload);
    } else {
      crashed = true;
    }
  }
  if (!crashed || !injector.fired()) {
    (*fail)(ned::StrCat(name, ": armed crash never fired"));
    return;
  }
  // Fail-closed: the journal must refuse appends after the crash, so a
  // half-written log can never silently grow.
  if ((*journal)->Append(JournalRecordType::kShed, "late").ok()) {
    (*fail)(ned::StrCat(name, ": journal accepted an append after a crash"));
  }
  journal->reset();  // close as much as a dying process would
  injector.Disarm();
  options.crash = nullptr;
  std::vector<JournalRecord> after;
  auto reopened = Journal::Open(options, &after);
  if (!reopened.ok()) {
    (*fail)(ned::StrCat(name, ": re-open failed: ",
                        reopened.status().ToString()));
    return;
  }
  // The contract: every acked record recovered, in order, nothing
  // fabricated. The rotation points fire *after* the triggering record was
  // written and synced (Append then returns an error), so exactly one
  // unacked-but-durable record may follow the acked prefix -- harmless, the
  // client saw a failure and never trusted it; anything beyond that is a
  // fabrication.
  if (after.size() != acked.size() && after.size() != acked.size() + 1) {
    (*fail)(ned::StrCat(name, ": recovered ", after.size(),
                        " records for ", acked.size(), " acked"));
    return;
  }
  for (size_t i = 0; i < acked.size(); ++i) {
    if (after[i].payload != acked[i]) {
      (*fail)(ned::StrCat(name, ": record ", i, " payload mismatch"));
      return;
    }
    if (after[i].seq != i + 1) {
      (*fail)(ned::StrCat(name, ": record ", i, " has seq ", after[i].seq));
      return;
    }
  }
  if (after.size() == acked.size() + 1 &&
      after.back().payload != ned::StrCat("record-", acked.size())) {
    (*fail)(ned::StrCat(name, ": trailing recovered record is not the one "
                        "that crashed"));
    return;
  }
  // And the journal is usable again: the post-crash epoch extends cleanly.
  if (!(*reopened)->Append(JournalRecordType::kComplete, "post").ok()) {
    (*fail)(ned::StrCat(name, ": append after recovery failed"));
  }
}

AnswerSummary MakeSummary(int salt) {
  AnswerSummary summary;
  summary.detailed = {ned::StrCat("(P.id:", salt, ", m0)"),
                      ned::StrCat("(P.id:", salt + 1, ", m2)")};
  summary.condensed = {"m0"};
  summary.secondary = {"m3"};
  summary.dir_total = static_cast<size_t>(salt);
  summary.indir_total = 2;
  summary.survivors_at_root = 1;
  summary.complete = true;
  summary.completeness = "complete";
  return summary;
}

/// One store leg: a clean Put, then a Put interrupted at the armed point;
/// re-open must keep the first entry byte-identical and show the second
/// either absent or complete -- never torn, never fabricated.
void RunStoreCrashLeg(const std::string& base, CrashPoint point,
                      const char* name, bool second_must_survive,
                      FailCounter* fail) {
  const std::string dir = ned::StrCat(base, "/sim-store-", name);
  RemoveTree(dir);
  CrashInjector injector;
  AnswerStoreOptions options;
  options.dir = dir;
  options.crash = &injector;
  auto store = AnswerStore::Open(options);
  if (!store.ok()) {
    (*fail)(ned::StrCat(name, ": open failed: ", store.status().ToString()));
    return;
  }
  const AnswerSummary first = MakeSummary(100);
  const AnswerSummary second = MakeSummary(200);
  StoreManifestEntry manifest;
  manifest.db_name = "dbA";
  manifest.content_fingerprint = 0xABCDEF;
  manifest.relations.push_back({"R", 1, 3});
  if (!(*store)->Put("key-one", first, manifest).ok()) {
    (*fail)(ned::StrCat(name, ": clean Put failed"));
    return;
  }
  injector.Arm(point, 1);
  if ((*store)->Put("key-two", second, manifest).ok() || !injector.fired()) {
    (*fail)(ned::StrCat(name, ": armed Put did not crash"));
    return;
  }
  store->reset();
  injector.Disarm();
  options.crash = nullptr;
  auto reopened = AnswerStore::Open(options);
  if (!reopened.ok()) {
    (*fail)(ned::StrCat(name, ": re-open failed: ",
                        reopened.status().ToString()));
    return;
  }
  auto lookup_one = (*reopened)->Lookup("key-one");
  std::string want, got;
  ned::EncodeAnswerSummary(first, &want);
  if (lookup_one.ok()) ned::EncodeAnswerSummary(*lookup_one, &got);
  if (!lookup_one.ok() || got != want) {
    (*fail)(ned::StrCat(name, ": acked entry lost or altered by the crash"));
  }
  auto lookup_two = (*reopened)->Lookup("key-two");
  if (lookup_two.ok()) {
    want.clear();
    got.clear();
    ned::EncodeAnswerSummary(second, &want);
    ned::EncodeAnswerSummary(*lookup_two, &got);
    // Surviving at all is always allowed (the crash may have hit after the
    // rename); surfacing altered bytes never is.
    if (got != want) {
      (*fail)(ned::StrCat(name, ": interrupted Put surfaced altered bytes"));
    }
  } else {
    if (lookup_two.status().code() != StatusCode::kNotFound) {
      (*fail)(ned::StrCat(name, ": interrupted Put lookup errored: ",
                          lookup_two.status().ToString()));
    }
    if (second_must_survive) {
      (*fail)(ned::StrCat(
          name, ": entry renamed before the crash did not survive it"));
    }
  }
}

int RunSimulatedBattery(const std::string& base, FailCounter* fail) {
  struct JournalLeg {
    CrashPoint point;
    const char* name;
    int arm_count;
  };
  // arm_count 7 lands mid-segment; the rotation points arm on their second
  // visit so at least one full rotation has already succeeded.
  const JournalLeg journal_legs[] = {
      {CrashPoint::kJournalBeforeAppend, "before-append", 7},
      {CrashPoint::kJournalTornAppend, "torn-append", 7},
      {CrashPoint::kJournalUnsyncedAppend, "unsynced-append", 7},
      {CrashPoint::kJournalBetweenSegments, "between-segments", 2},
      {CrashPoint::kJournalBeforeSegmentMagic, "before-magic", 2},
  };
  for (const JournalLeg& leg : journal_legs) {
    RunJournalCrashLeg(base, leg.point, leg.name, leg.arm_count, fail);
  }
  struct StoreLeg {
    CrashPoint point;
    const char* name;
    bool second_must_survive;
  };
  const StoreLeg store_legs[] = {
      {CrashPoint::kStoreBeforeTemp, "before-temp", false},
      {CrashPoint::kStoreTornTemp, "torn-temp", false},
      {CrashPoint::kStoreBeforeRename, "before-rename", false},
      // These two fire after the entry rename: the answer must survive.
      {CrashPoint::kStoreBeforeManifest, "before-manifest", true},
      {CrashPoint::kStoreBeforeManifestRename, "before-manifest-rename",
       true},
  };
  for (const StoreLeg& leg : store_legs) {
    RunStoreCrashLeg(base, leg.point, leg.name, leg.second_must_survive,
                     fail);
  }
  std::cout << "ned_crashtest: simulated battery done (5 journal + 5 store "
               "crash points)\n";
  return fail->failures;
}

// ---------------------------------------------------------------------------
// Real SIGKILL battery.
// ---------------------------------------------------------------------------

struct AckLine {
  std::string key;
  size_t case_idx = 0;
  uint64_t hash = 0;
};

std::vector<AckLine> ReadAcks(const std::string& path) {
  std::vector<AckLine> acks;
  auto content = ned::ReadFile(path);
  if (!content.ok()) return acks;  // killed before the first ack: fine
  std::istringstream in(*content);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    AckLine ack;
    std::string hex;
    if (!(fields >> ack.key >> ack.case_idx >> hex) || hex.size() != 16) {
      continue;  // a torn trailing line is not an ack
    }
    ack.hash = std::strtoull(hex.c_str(), nullptr, 16);
    acks.push_back(ack);
  }
  return acks;
}

/// Totals across the battery, reported at the end.
struct KillTotals {
  uint64_t acked = 0;
  uint64_t verified = 0;
  uint64_t pending_recovered = 0;
  uint64_t served_from_store = 0;
  uint64_t restored_completed = 0;
};

/// Forks a serving child on `dir`, SIGKILLs it mid-serving, recovers
/// in-process and verifies every acked request. Returns false on setup
/// failure (invariant violations go through `fail`).
bool RunKillCycle(const std::string& exe, const std::string& dir, int cycle,
                  const Workload& wl,
                  const std::map<size_t, uint64_t>& baseline,
                  KillTotals* totals, FailCounter* fail) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "fork failed\n";
    return false;
  }
  if (pid == 0) {
    const std::string cycle_str = std::to_string(cycle);
    ::execl(exe.c_str(), exe.c_str(), "--child-serve", dir.c_str(),
            cycle_str.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  // Wait until the child has produced at least one ack (it must finish
  // recovery and its first case first), then kill it at a cycle-varying
  // offset mid-serving.
  const std::string acks_path = ned::StrCat(dir, "/acks-", cycle);
  const auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool saw_ack = false;
  while (std::chrono::steady_clock::now() < wait_deadline) {
    struct stat st;
    if (::stat(acks_path.c_str(), &st) == 0 && st.st_size > 0) {
      saw_ack = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!saw_ack) {
    (*fail)(ned::StrCat("cycle ", cycle,
                        ": child produced no ack within 30s"));
  }
  const int delay_ms = 5 + (cycle * 37) % 116;
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  if (WIFEXITED(wstatus)) {
    (*fail)(ned::StrCat("cycle ", cycle, ": child exited with code ",
                        WEXITSTATUS(wstatus), " instead of dying by signal"));
  }

  // Recover in-process, as the next serving process would.
  WhyNotService service(wl.catalog, PersistentOptions(dir));
  const WhyNotService::RecoveryReport rec = service.Recover();
  totals->pending_recovered += rec.pending_found;
  totals->served_from_store += rec.served_from_store;
  totals->restored_completed += rec.restored_completed;
  if (rec.dropped != 0) {
    (*fail)(ned::StrCat("cycle ", cycle, ": recovery dropped ", rec.dropped,
                        " journaled requests"));
  }
  const std::vector<AckLine> acks = ReadAcks(acks_path);
  totals->acked += acks.size();
  const uint64_t accepted_before = service.stats().accepted;
  for (const AckLine& ack : acks) {
    if (ack.case_idx >= wl.cases.size()) {
      (*fail)(ned::StrCat("cycle ", cycle, ": ack with bad case index"));
      continue;
    }
    WhyNotService::Submission sub =
        service.Submit(CaseRequest(wl, ack.case_idx, ack.key));
    if (!sub.status.ok()) {
      (*fail)(ned::StrCat("cycle ", cycle, ": acked key ", ack.key,
                          " lost: ", sub.status.ToString()));
      continue;
    }
    const WhyNotResponse resp = sub.response.get();
    if (!resp.status.ok() || !resp.answer.complete ||
        resp.answer.degradation_level != 0) {
      (*fail)(ned::StrCat("cycle ", cycle, ": acked key ", ack.key,
                          " recovered degraded or failed"));
      continue;
    }
    if (FullHash(resp.answer) != ack.hash) {
      (*fail)(ned::StrCat("cycle ", cycle, ": acked key ", ack.key,
                          " recovered with different bytes"));
      continue;
    }
    const auto base_it = baseline.find(ack.case_idx);
    if (base_it != baseline.end() &&
        ContentHash(resp.answer) != base_it->second) {
      (*fail)(ned::StrCat("cycle ", cycle, ": acked key ", ack.key,
                          " differs from the uninterrupted baseline"));
      continue;
    }
    ++totals->verified;
  }
  // Exactly-once: replaying every ack accepted zero new work -- each was
  // served from the restored idempotency book or the durable store, so no
  // acked request ever executes twice across the crash.
  const uint64_t accepted_after = service.stats().accepted;
  if (accepted_after != accepted_before) {
    (*fail)(ned::StrCat("cycle ", cycle, ": verifying ", acks.size(),
                        " acks re-executed ",
                        accepted_after - accepted_before, " of them"));
  }
  service.Shutdown(/*drain=*/true);
  return true;
}

int RunKillBattery(const Args& args, const std::string& exe,
                   const std::string& base, FailCounter* fail) {
  Workload wl;
  if (!BuildWorkload(&wl)) return ++fail->failures;
  // Uninterrupted baseline: one cold, persistence-off service, the same
  // submission order every child uses. Content hashes only -- computation
  // counters may differ once recovery interleaves.
  std::map<size_t, uint64_t> baseline;
  {
    ServiceOptions options;
    options.workers = 2;
    options.default_deadline_ms = 5000;
    WhyNotService service(wl.catalog, options);
    for (size_t i = 0; i < wl.cases.size(); ++i) {
      WhyNotService::Submission sub =
          service.Submit(CaseRequest(wl, i, ned::StrCat("baseline-", i)));
      if (!sub.status.ok()) {
        (*fail)(ned::StrCat("baseline submit ", i, " failed"));
        continue;
      }
      const WhyNotResponse resp = sub.response.get();
      if (!resp.status.ok() || !resp.answer.complete) {
        (*fail)(ned::StrCat("baseline case ", i, " did not complete"));
        continue;
      }
      baseline[i] = ContentHash(resp.answer);
    }
    service.Shutdown(/*drain=*/true);
  }
  const std::string dir = base + "/kill";
  RemoveTree(dir);
  NED_CHECK(ned::EnsureDir(dir).ok());
  KillTotals totals;
  int cycles_run = 0;
  for (int cycle = 0; cycle < args.cycles && !StopRequested(); ++cycle) {
    if (!RunKillCycle(exe, dir, cycle, wl, baseline, &totals, fail)) break;
    ++cycles_run;
  }
  if (totals.acked == 0) {
    (*fail)("kill battery acked nothing: the test proved nothing");
  }
  std::cout << "ned_crashtest: kill battery done (" << cycles_run
            << " SIGKILL cycles, " << totals.acked << " acked, "
            << totals.verified << " verified byte-identical, "
            << totals.pending_recovered << " pending recovered, "
            << totals.restored_completed << " completed restored, "
            << totals.served_from_store << " served from store)\n";
  return fail->failures;
}

int RunParent(const Args& args) {
  ned::InstallDrainSignalHandlers();
  char exe_buf[4096];
  const ssize_t exe_len =
      ::readlink("/proc/self/exe", exe_buf, sizeof(exe_buf) - 1);
  if (exe_len <= 0) {
    std::cerr << "cannot resolve /proc/self/exe\n";
    return 2;
  }
  const std::string exe(exe_buf, static_cast<size_t>(exe_len));
  std::string base = args.dir;
  if (base.empty()) {
    char tmpl[] = "/tmp/ned_crashtest.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::cerr << "mkdtemp failed\n";
      return 2;
    }
    base = tmpl;
  } else {
    NED_CHECK(ned::EnsureDir(base).ok());
  }
  std::cout << "ned_crashtest: " << args.cycles << " cycles, dir " << base
            << "\n";
  FailCounter fail;
  RunSimulatedBattery(base, &fail);
  RunKillBattery(args, exe, base, &fail);
  if (!args.keep) RemoveTree(base);
  if (StopRequested()) {
    std::cout << "ned_crashtest: INTERRUPTED (signal; stopped after the "
                 "current cycle)\n";
  }
  if (fail.failures == 0) {
    std::cout << "ned_crashtest: PASS (zero lost acks, zero duplicate "
                 "executions, byte-identical recovery at every crash "
                 "point)\n";
    return 0;
  }
  std::cerr << "ned_crashtest: FAIL (" << fail.failures << " violations)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.child_serve) return RunChildServe(args.child_dir, args.child_cycle);
  return RunParent(args);
}
