/// \file ned_difftest.cpp
/// \brief Differential fuzzing CLI: NedExplain engine vs. brute-force oracle.
///
/// Usage:
///   ned_difftest --seeds 1..5000 [--shrink] [--out repro_dir]
///                [--stop-after N] [--no-baseline] [--no-et] [--no-sql] [-v]
///
/// Runs every seed in the range through the differential harness
/// (src/testing/difftest.h). Failing seeds are reported with a one-line
/// repro command; with --shrink each failure is minimized and, with --out,
/// serialized as CSV + SQL + a ready-to-paste gtest case. Exit status is the
/// number of failing seeds (capped at 99), so CI can gate on it.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "testing/difftest.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: ned_difftest --seeds A..B [--shrink] [--out DIR]\n"
               "                    [--stop-after N] [--no-baseline]"
               " [--no-et] [--no-sql] [--inject] [-v]\n");
}

bool ParseSeeds(const std::string& arg, uint64_t* lo, uint64_t* hi) {
  size_t dots = arg.find("..");
  char* end = nullptr;
  if (dots == std::string::npos) {
    *lo = *hi = std::strtoull(arg.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  }
  std::string a = arg.substr(0, dots), b = arg.substr(dots + 2);
  *lo = std::strtoull(a.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *hi = std::strtoull(b.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && *lo <= *hi;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t lo = 1, hi = 1000;
  bool shrink = false, verbose = false, have_seeds = false;
  size_t stop_after = SIZE_MAX;
  std::string out_dir;
  ned::DiffOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      if (!ParseSeeds(next(), &lo, &hi)) {
        Usage();
        return 2;
      }
      have_seeds = true;
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--stop-after") {
      stop_after = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-baseline") {
      options.check_baseline = false;
    } else if (arg == "--no-et") {
      options.check_early_termination = false;
    } else if (arg == "--no-sql") {
      options.check_sql_roundtrip = false;
    } else if (arg == "--inject") {
      // Self-test: fake an engine divergence so the report/shrink/repro
      // pipeline can be exercised without a real bug.
      options.inject_divergence = true;
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else {
      Usage();
      return 2;
    }
  }
  if (!have_seeds) {
    std::fprintf(stderr, "note: no --seeds given, defaulting to %llu..%llu\n",
                 (unsigned long long)lo, (unsigned long long)hi);
  }

  size_t failures = 0, ran = 0, skipped = 0;
  for (uint64_t seed = lo; seed <= hi; ++seed) {
    ned::DiffOutcome outcome = ned::RunDiffSeed(seed, options);
    if (outcome.ran) {
      ++ran;
    } else if (outcome.ok()) {
      ++skipped;
      if (verbose) {
        std::printf("seed %llu: %s\n", (unsigned long long)seed,
                    outcome.note.c_str());
      }
    }
    if (!outcome.ok()) {
      ++failures;
      std::printf("FAIL %s\n", outcome.Summary().c_str());
      if (shrink) {
        ned::GenWorkload w = ned::MakeDiffWorkload(seed);
        ned::ShrinkResult shrunk = ned::ShrinkWorkload(w, options);
        std::printf("  shrunk: %zu rows -> %zu rows (%zu/%zu reductions "
                    "accepted)\n",
                    w.TotalRows(), shrunk.workload.TotalRows(), shrunk.accepted,
                    shrunk.tried);
        if (!out_dir.empty()) {
          ned::Status st =
              ned::WriteRepro(shrunk.workload, shrunk.outcome, out_dir);
          std::printf("  repro files: %s\n",
                      st.ok() ? (out_dir + "/seed" + std::to_string(seed) +
                                 "*")
                                    .c_str()
                              : st.ToString().c_str());
        }
      }
      if (failures >= stop_after) {
        std::printf("stopping after %zu failure(s)\n", failures);
        break;
      }
    } else if (verbose && outcome.ran) {
      std::printf("seed %llu (%s): ok\n", (unsigned long long)seed,
                  outcome.scenario.c_str());
    }
    if (!verbose && (seed - lo + 1) % 500 == 0) {
      std::printf("... %llu/%llu seeds, %zu failure(s)\n",
                  (unsigned long long)(seed - lo + 1),
                  (unsigned long long)(hi - lo + 1), failures);
      std::fflush(stdout);
    }
  }
  std::printf("done: %llu seed(s), %zu compared, %zu rejected-by-both, "
              "%zu failure(s)\n",
              (unsigned long long)(hi - lo + 1), ran, skipped, failures);
  return failures > 99 ? 99 : static_cast<int>(failures);
}
