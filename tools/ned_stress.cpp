/// \file ned_stress.cpp
/// \brief Chaos stress harness for the concurrent why-not service.
///
/// Drives N concurrent clients over the paper's 19 use cases plus generated
/// differential workloads while injecting faults at every layer: engine
/// checkpoint faults (deterministic InjectFailureAt), service transient
/// faults (retryable kUnavailable), tight deadlines and budgets, admission
/// sheds under a deliberately small queue, concurrent copy-on-write catalog
/// reloads, mixed priority classes (client i gets class i%3 with per-class
/// deadline regimes; three clients share one "hot" fair-share id above its
/// quota), brownout pressure (enabled ladder under the small queue) and a
/// dedicated sequential poison injector firing uncompilable queries at the
/// per-key circuit breakers. Asserts, at the end of the run:
///
///   - zero crashes (reaching the final report at all),
///   - zero lost or duplicated responses: every submitted logical request
///     produced exactly one final outcome, and the service's own books
///     agree (accepted == completed + transient failures re-keyed; queue
///     expiries count as completed),
///   - every shed or transiently-failed request eventually succeeded via
///     the retry policy (clients stop submitting new work at the horizon,
///     so retries always find capacity),
///   - bounded p99 latency: queue wait + execution stays within the largest
///     request deadline plus scheduling slack,
///   - honest caching: answer-cache hits seen by clients equal the hits the
///     service recorded, the exactly-once books still balance with the
///     caches on (hits are neither accepted nor completed), and full runs
///     actually exercise the cached path (~half the traffic bypasses the
///     answer cache so the execute path stays under chaos too),
///   - honest degradation: clients saw exactly as many degraded answers as
///     the service computed, and no degraded answer was ever replayed from
///     the answer cache,
///   - bounded poison: a query that can never compile executes at most
///     (threshold + failed probes) times per content key -- everything else
///     fast-fails on an open breaker,
///   - no starvation: every client, of every priority class, completed at
///     least one answered request despite quotas, brownout and poison,
///   - reconciled expiry: queue-expired finals seen by clients equal the
///     service's expired_in_queue count.
///
/// Exit code 0 on success, 1 on any violated invariant. `--smoke` is the
/// CI-sized run.
///
/// Durability hooks (see docs/DURABILITY.md): `--persist DIR` runs the
/// service with the write-ahead journal + durable answer store rooted at
/// DIR and recovers from it on startup; SIGTERM/SIGINT trigger a graceful
/// Drain (finish in-flight, journal the rest as recoverable) instead of the
/// normal shutdown; `--crash-after-ms N` SIGKILLs the process mid-chaos so
/// ned_crashtest can prove kill-and-recover exactly-once on a real process.

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.h"
#include "common/signal_drain.h"
#include "common/rng.h"
#include "common/strings.h"
#include "datasets/use_cases.h"
#include "obs/expose.h"
#include "relational/catalog.h"
#include "service/retry.h"
#include "service/service.h"
#include "testing/workload.h"

namespace {

using ned::Catalog;
using ned::CTuple;
using ned::Database;
using ned::Priority;
using ned::RetryOutcome;
using ned::RetryPolicy;
using ned::Rng;
using ned::ServiceOptions;
using ned::Status;
using ned::StatusCode;
using ned::Value;
using ned::WhyNotQuestion;
using ned::WhyNotRequest;
using ned::WhyNotService;

/// Three blocking clients plus the open-loop hog share this fair-share id
/// against a quota of one, so any in-flight overlap on "hot" is a quota
/// shed. The quota is this tight because answers are sub-millisecond here:
/// on a single core, blocking clients almost never overlap at all, and the
/// hog's back-to-back bursts are what make fair-share sheds deterministic.
/// Unique-id clients are unaffected (they block on their own requests).
constexpr int kHotClients = 3;
constexpr size_t kPerClientLimit = 1;

/// SIGTERM/SIGINT -> graceful drain: the shared helper in
/// common/signal_drain.h owns the handler; loops poll it alongside the
/// horizon so an operator signal stops new submissions promptly, and the
/// main thread then runs a graceful Drain (finish in-flight, journal the
/// rest as recoverable) instead of the full-drain Shutdown.
bool StopRequested() { return ned::DrainRequested(); }

struct Args {
  int clients = 8;
  int seconds = 10;
  int workers = 4;
  // Deliberately smaller than the default client count: clients block on
  // their own requests, so sheds only happen when workers + queue < clients.
  size_t queue = 3;
  // Intra-query parallelism under chaos: the service default for requests
  // that opt in. Clients alternate serial / parallel (even client ids force
  // threads=1), so both evaluation modes run concurrently against the same
  // pool -- and the peak-active invariant proves the global bound held.
  int threads_per_request = 2;
  std::string inject = "all";  // all | none | engine | service
  uint64_t seed = 1;
  int scale = 1;
  bool smoke = false;
  /// When non-empty, the service runs with the write-ahead journal and
  /// durable answer store rooted here (and recovers from it on startup).
  std::string persist_dir;
  /// When > 0, a detached thread SIGKILLs this process after N ms -- the
  /// kill-and-recover harness (ned_crashtest) uses this to crash a real
  /// serving process at an uncontrolled point and then prove recovery.
  int64_t crash_after_ms = 0;
  /// When non-empty, the service's metrics registry is dumped here
  /// (Prometheus text exposition) after the run -- a chaos run's worth of
  /// live series for eyeballing or scraping offline.
  std::string metrics_out;
};

/// One drivable scenario: a database name in the catalog + SQL + question.
struct StressCase {
  std::string name;
  std::string db_name;
  std::string sql;
  WhyNotQuestion question;
};

/// Per-client tally, merged at the end.
struct ClientTally {
  uint64_t requests = 0;
  uint64_t ok_complete = 0;
  uint64_t ok_partial = 0;
  uint64_t permanent_errors = 0;
  uint64_t exhausted = 0;
  uint64_t sheds_seen = 0;
  uint64_t transients_seen = 0;
  uint64_t retried_to_success = 0;
  uint64_t duplicate_finals = 0;
  /// Final kDeadlineExceeded responses whose deadline passed in the queue
  /// (never dispatched). Not permanent errors: the load, not the request,
  /// was at fault.
  uint64_t expired = 0;
  /// OK responses carrying a brownout degradation flag.
  uint64_t degraded_seen = 0;
  /// Degraded responses served from the answer cache -- must never happen.
  uint64_t degraded_from_cache = 0;
  /// Responses replayed from the content-addressed answer cache at Submit.
  uint64_t cache_served = 0;
  /// Requests that explicitly bypassed the answer cache (~half the traffic,
  /// so both the cached and the executed path stay under chaos).
  uint64_t cache_bypassed = 0;
  std::vector<double> latencies_ms;  // queue + exec of final responses
  /// Permanent-error diagnosis: "<case>: <status>" -> count. Printed on
  /// failure so a violated zero-permanent-errors invariant names the culprit.
  std::map<std::string, uint64_t> error_kinds;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](int64_t* out) {
      if (i + 1 >= argc) return false;
      *out = std::stoll(argv[++i]);
      return true;
    };
    int64_t v = 0;
    if (arg == "--clients" && next(&v)) {
      args->clients = static_cast<int>(v);
    } else if (arg == "--seconds" && next(&v)) {
      args->seconds = static_cast<int>(v);
    } else if (arg == "--workers" && next(&v)) {
      args->workers = static_cast<int>(v);
    } else if (arg == "--queue" && next(&v)) {
      args->queue = static_cast<size_t>(v);
    } else if (arg == "--threads-per-request" && next(&v)) {
      args->threads_per_request = static_cast<int>(v);
    } else if (arg == "--seed" && next(&v)) {
      args->seed = static_cast<uint64_t>(v);
    } else if (arg == "--scale" && next(&v)) {
      args->scale = static_cast<int>(v);
    } else if (arg == "--inject") {
      if (i + 1 >= argc) return false;
      args->inject = argv[++i];
    } else if (arg == "--persist") {
      if (i + 1 >= argc) return false;
      args->persist_dir = argv[++i];
    } else if (arg == "--crash-after-ms" && next(&v)) {
      args->crash_after_ms = v;
    } else if (arg == "--metrics-out") {
      if (i + 1 >= argc) return false;
      args->metrics_out = argv[++i];
    } else if (arg == "--smoke") {
      args->smoke = true;
      args->clients = 4;
      args->seconds = 2;
      args->workers = 2;
      args->queue = 1;  // keep workers + queue < clients so sheds happen
    } else {
      std::cerr << "unknown argument: " << arg << "\n"
                << "usage: ned_stress [--clients N] [--seconds S] "
                   "[--workers W] [--queue Q] [--threads-per-request T] "
                   "[--inject all|none|engine|service] [--seed S] "
                   "[--scale K] [--persist DIR] [--crash-after-ms N] "
                   "[--metrics-out FILE] [--smoke]\n";
      return false;
    }
  }
  return true;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

/// A client thread: submits randomized requests with per-request seeds and
/// chaos knobs until the horizon, retrying each one to completion.
void ClientLoop(int client_id, const Args& args, WhyNotService* service,
                const std::vector<StressCase>* cases,
                std::chrono::steady_clock::time_point horizon,
                ClientTally* tally, std::map<std::string, int>* finals,
                std::mutex* finals_mu) {
  Rng rng(ned::MixSeed(args.seed, static_cast<uint64_t>(client_id) + 1));
  const bool inject_engine = args.inject == "all" || args.inject == "engine";
  const bool inject_service = args.inject == "all" || args.inject == "service";
  // This client's fixed scheduling identity: priority class by index, and
  // the first kHotClients share one fair-share id that exceeds the quota.
  const Priority priority = static_cast<Priority>(client_id % 3);
  const std::string fair_share_id = client_id < kHotClients
                                        ? std::string("hot")
                                        : ned::StrCat("c", client_id);
  RetryPolicy policy;
  // Effectively unbounded: brownout L3 can shed non-interactive work for as
  // long as the overload lasts, so convergence must be allowed to wait for
  // the post-horizon drain. The exhausted==0 invariant still bites.
  policy.max_attempts = 500;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 50;
  policy.priority_aware_backoff = true;
  uint64_t n = 0;
  while (!StopRequested() && std::chrono::steady_clock::now() < horizon) {
    const StressCase& c =
        (*cases)[static_cast<size_t>(rng.Next() % cases->size())];
    WhyNotRequest req;
    req.key = ned::StrCat("c", client_id, "-r", n++);
    req.db_name = c.db_name;
    req.sql = c.sql;
    req.question = c.question;
    req.priority = priority;
    req.client_id = fair_share_id;
    req.seed = ned::MixSeed(args.seed, ned::HashSeed(req.key));
    // Mixed serial/parallel traffic: even clients force serial evaluation,
    // odd clients take the service's threads_per_request default. Answers
    // are bit-identical either way (differential_test proves it), so the
    // exactly-once and soundness invariants below hold across the mix.
    req.threads = (client_id % 2 == 0) ? 1 : 0;
    // Per-class deadline regimes. Interactive mixes in deadlines tight
    // enough that only a flagged partial (or a queue expiry) can come back
    // in time; weaker classes expect to wait out the priority queue.
    switch (priority) {
      case Priority::kInteractive:
        req.deadline_ms = rng.Chance(0.2) ? rng.UniformInt(5, 30)
                                          : rng.UniformInt(200, 1000);
        break;
      case Priority::kBatch:
        req.deadline_ms = rng.UniformInt(300, 1200);
        break;
      case Priority::kBackground:
        req.deadline_ms = rng.UniformInt(500, 2000);
        break;
    }
    if (rng.Chance(0.15)) req.row_budget = static_cast<size_t>(
        rng.UniformInt(10, 500));
    if (inject_engine && rng.Chance(0.25)) {
      req.inject_fault_at_step = static_cast<uint64_t>(rng.UniformInt(1, 200));
    }
    if (inject_service && rng.Chance(0.25)) {
      req.inject_transient_failures = static_cast<int>(rng.UniformInt(1, 3));
    }
    // Half the traffic skips the answer cache so repeated questions keep
    // exercising the execute path (and its chaos) instead of collapsing
    // into Submit-time replays; the other half proves cached serving stays
    // exactly-once under the same load.
    if (rng.Chance(0.5)) {
      req.bypass_answer_cache = true;
      ++tally->cache_bypassed;
    }

    RetryOutcome outcome = ned::SubmitWithRetry(*service, req, policy);
    ++tally->requests;
    tally->sheds_seen += static_cast<uint64_t>(outcome.sheds);
    tally->transients_seen += static_cast<uint64_t>(outcome.transients);
    {
      // Exactly-once bookkeeping: one final outcome per key, globally.
      std::lock_guard<std::mutex> lock(*finals_mu);
      int& count = (*finals)[req.key];
      ++count;
      if (count > 1) ++tally->duplicate_finals;
    }
    if (outcome.exhausted) {
      ++tally->exhausted;
      continue;
    }
    if ((outcome.sheds > 0 || outcome.transients > 0) &&
        outcome.response.status.ok()) {
      ++tally->retried_to_success;
    }
    if (!outcome.response.status.ok()) {
      if (outcome.response.expired_in_queue) {
        ++tally->expired;  // overload outcome, not a request defect
        continue;
      }
      ++tally->permanent_errors;
      ++tally->error_kinds[ned::StrCat(c.name, ": ",
                                       outcome.response.status.ToString())];
      continue;
    }
    if (outcome.response.served_from_answer_cache) ++tally->cache_served;
    if (outcome.response.answer.degradation_level > 0) {
      ++tally->degraded_seen;
      if (outcome.response.served_from_answer_cache) {
        ++tally->degraded_from_cache;
      }
    }
    if (outcome.response.answer.complete) {
      ++tally->ok_complete;
    } else {
      ++tally->ok_partial;
    }
    tally->latencies_ms.push_back(outcome.response.queue_ms +
                                  outcome.response.exec_ms);
  }
}

/// An open-loop hot client: each burst fires two back-to-back submissions
/// under the shared "hot" fair-share id without waiting for the first to
/// resolve, so the second finds the first still holding the quota slot
/// (limit 1) and is shed as kClientQuota -- quota-first in TryAdmit, even
/// at moments the queue is also full. Shed bursts are simply dropped (open
/// loop, no retry); accepted ones are tracked with the same exactly-once
/// bookkeeping as the blocking clients.
void HogLoop(const Args& args, WhyNotService* service,
             const std::vector<StressCase>* cases,
             std::chrono::steady_clock::time_point horizon,
             ClientTally* tally, std::map<std::string, int>* finals,
             std::mutex* finals_mu) {
  Rng rng(ned::MixSeed(args.seed, 0x407C0DEULL));
  uint64_t n = 0;
  while (!StopRequested() && std::chrono::steady_clock::now() < horizon) {
    const StressCase& c =
        (*cases)[static_cast<size_t>(rng.Next() % cases->size())];
    WhyNotService::Submission subs[2];
    for (auto& sub : subs) {
      WhyNotRequest req;
      req.key = ned::StrCat("hog-r", n++);
      req.db_name = c.db_name;
      req.sql = c.sql;
      req.question = c.question;
      req.priority = Priority::kInteractive;
      req.client_id = "hot";
      req.deadline_ms = 500;
      req.seed = ned::MixSeed(args.seed, ned::HashSeed(req.key));
      sub = service->Submit(std::move(req));
    }
    for (auto& sub : subs) {
      if (!sub.status.ok()) {
        ++tally->sheds_seen;
        continue;
      }
      ++tally->requests;
      const ned::WhyNotResponse resp = sub.response.get();
      {
        std::lock_guard<std::mutex> lock(*finals_mu);
        int& count = (*finals)[resp.key];
        ++count;
        if (count > 1) ++tally->duplicate_finals;
      }
      if (!resp.status.ok()) {
        if (resp.expired_in_queue) {
          ++tally->expired;
        } else if (resp.retryable()) {
          ++tally->transients_seen;  // injected-transient-free, but honest
        } else {
          ++tally->permanent_errors;
          ++tally->error_kinds[ned::StrCat(c.name, ": ",
                                           resp.status.ToString())];
        }
        continue;
      }
      if (resp.served_from_answer_cache) ++tally->cache_served;
      if (resp.answer.degradation_level > 0) {
        ++tally->degraded_seen;
        if (resp.served_from_answer_cache) ++tally->degraded_from_cache;
      }
      if (resp.answer.complete) {
        ++tally->ok_complete;
      } else {
        ++tally->ok_partial;
      }
      tally->latencies_ms.push_back(resp.queue_ms + resp.exec_ms);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// What the poison injector saw. Executions are finals that actually ran
/// (and failed to compile); fast-fails were short-circuited by an open
/// breaker; expired never reached a worker.
struct PoisonTally {
  uint64_t finals = 0;
  uint64_t executions = 0;
  uint64_t fast_fails = 0;
  uint64_t expired = 0;
  uint64_t exhausted = 0;
  uint64_t unexpected_ok = 0;
};

/// Number of distinct poison content keys the injector cycles through.
constexpr uint64_t kPoisonKinds = 3;

/// The poison injector: a sequential thread firing queries that can never
/// compile (unknown relation) at the service, one at a time, each under a
/// fresh idempotency key but one of kPoisonKinds content keys. Sequential
/// on purpose: the breaker's exact execution bound (threshold + failed
/// probes per key) is only claimed for non-concurrent duplicates -- the
/// concurrent case is covered by suspect serialization in scheduler_test.
/// Deliberately NO transient injection here: transients clear breaker
/// failure counts (they prove the key executes), which would blur the
/// bound this harness asserts.
void PoisonLoop(const Args& args, WhyNotService* service,
                std::chrono::steady_clock::time_point horizon,
                PoisonTally* tally) {
  RetryPolicy policy;
  policy.max_attempts = 500;  // sheds must converge; errors return at once
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 50;
  uint64_t n = 0;
  while (!StopRequested() && std::chrono::steady_clock::now() < horizon) {
    const uint64_t kind = n % kPoisonKinds;
    WhyNotRequest req;
    req.key = ned::StrCat("poison-", n++);
    req.db_name = "crime";
    req.sql = ned::StrCat("SELECT ZZZ", kind, ".v FROM ZZZ", kind);
    CTuple tc;
    tc.Add(ned::StrCat("ZZZ", kind, ".v"), Value::Str("x"));
    req.question = WhyNotQuestion(tc);
    req.client_id = "poison";
    req.seed = ned::MixSeed(args.seed, ned::HashSeed(req.key));
    RetryOutcome outcome = ned::SubmitWithRetry(*service, req, policy);
    ++tally->finals;
    if (outcome.exhausted) {
      ++tally->exhausted;
    } else if (outcome.breaker_fast_fail) {
      ++tally->fast_fails;
    } else if (outcome.response.expired_in_queue) {
      ++tally->expired;
    } else if (outcome.response.status.ok()) {
      ++tally->unexpected_ok;
    } else {
      ++tally->executions;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// A reloader thread: exercises copy-on-write reloads + swaps against the
/// generated-workload databases while clients hammer them.
void ReloaderLoop(Catalog* catalog, const std::vector<uint64_t>* wl_seeds,
                  uint64_t seed,
                  std::chrono::steady_clock::time_point horizon,
                  std::atomic<uint64_t>* reloads) {
  Rng rng(ned::MixSeed(seed, 0xC0FFEEULL));
  while (!StopRequested() && std::chrono::steady_clock::now() < horizon) {
    const uint64_t wl_seed = rng.Pick(*wl_seeds);
    const std::string db_name = ned::StrCat("wl", wl_seed);
    // Rebuild the same workload instance and swap it in: contents are
    // equivalent, so any pinned snapshot stays a valid view.
    ned::GenWorkload w = ned::MakeDiffWorkload(wl_seed);
    Database db;
    bool ok = true;
    for (const auto& rel : w.relations) {
      if (!db.AddRelation(rel).ok()) ok = false;
    }
    if (ok && catalog->SwapDatabase(db_name, std::move(db)).ok()) {
      reloads->fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int Run(const Args& args) {
  // ---- build the catalog and the case list ---------------------------------
  auto registry = ned::UseCaseRegistry::Build(args.scale);
  if (!registry.ok()) {
    std::cerr << "failed to build use cases: " << registry.status().ToString()
              << "\n";
    return 1;
  }
  auto catalog = std::make_shared<Catalog>();
  for (const char* name : {"crime", "imdb", "gov"}) {
    Database copy = registry->database(name);
    NED_CHECK(catalog->Register(name, std::move(copy)).ok());
  }
  std::vector<StressCase> cases;
  for (const ned::UseCase& uc : registry->use_cases()) {
    cases.push_back({uc.name, uc.db_name, uc.sql, uc.question});
  }
  // Generated workloads widen the shape coverage beyond Table 4.
  std::vector<uint64_t> wl_seeds;
  for (uint64_t s = args.seed * 100 + 1; wl_seeds.size() < 8; ++s) {
    ned::GenWorkload w = ned::MakeDiffWorkload(s);
    const std::string sql = ned::SpecToSql(w.spec);
    if (sql.empty()) continue;
    Database db;
    bool ok = true;
    for (const auto& rel : w.relations) {
      if (!db.AddRelation(rel).ok()) ok = false;
    }
    if (!ok) continue;
    const std::string db_name = ned::StrCat("wl", s);
    if (!catalog->Register(db_name, std::move(db)).ok()) continue;
    cases.push_back({db_name, db_name, sql, w.question});
    wl_seeds.push_back(s);
  }
  std::cout << "ned_stress: " << cases.size() << " cases ("
            << registry->use_cases().size() << " paper use cases + "
            << wl_seeds.size() << " generated), " << args.clients
            << " clients, " << args.workers << " workers, queue "
            << args.queue << ", " << args.seconds << "s, inject="
            << args.inject << ", seed=" << args.seed << "\n";

  // ---- spin up the service and the chaos -----------------------------------
  ServiceOptions options;
  options.workers = args.workers;
  options.queue_capacity = args.queue;
  options.per_client_limit = kPerClientLimit;
  options.default_deadline_ms = 2000;
  options.default_memory_budget = 64u << 20;
  options.memory_watermark_bytes =
      static_cast<size_t>(args.workers + static_cast<int>(args.queue)) *
      (64u << 20);
  // The full overload-resilience surface is on: brownout ladder fed by the
  // deliberately small queue, and breakers for the poison injector.
  options.brownout.enabled = true;
  options.breaker.failure_threshold = 3;
  options.breaker.probe_interval_ms = 100;
  // Intra-query parallelism under the same chaos: a low activation
  // threshold so the generated workloads (often < 64 rows) partition too.
  options.threads_per_request = args.threads_per_request;
  options.parallel_min_rows = 8;
  if (!args.persist_dir.empty()) options.persist_dir = args.persist_dir;
  WhyNotService service(catalog, options);
  if (service.persistence_enabled()) {
    // Replay whatever a previous (possibly crashed) run left behind before
    // admitting new chaos: restored answers dedupe, pending work re-enqueues.
    const ned::WhyNotService::RecoveryReport rec = service.Recover();
    std::cout << "recovery          : replayed=" << rec.replayed_records
              << " restored=" << rec.restored_completed
              << " pending=" << rec.pending_found
              << " from_store=" << rec.served_from_store
              << " resubmitted=" << rec.resubmitted
              << " deferred=" << rec.deferred
              << " dropped=" << rec.dropped << "\n";
  }

  // Operator signals request a graceful drain instead of a hard stop; the
  // loops poll the shared drain flag and the main thread picks the shutdown
  // flavor below.
  ned::InstallDrainSignalHandlers();
  if (args.crash_after_ms > 0) {
    // A real, uncatchable crash at an arbitrary point mid-chaos. Detached:
    // if the run outlives the timer something went wrong anyway.
    std::thread([ms = args.crash_after_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      ::kill(::getpid(), SIGKILL);
    }).detach();
  }

  const auto horizon = std::chrono::steady_clock::now() +
                       std::chrono::seconds(args.seconds);
  std::vector<ClientTally> tallies(static_cast<size_t>(args.clients));
  std::map<std::string, int> finals;
  std::mutex finals_mu;
  std::atomic<uint64_t> reloads{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < args.clients; ++c) {
    threads.emplace_back(ClientLoop, c, std::cref(args), &service, &cases,
                         horizon, &tallies[static_cast<size_t>(c)], &finals,
                         &finals_mu);
  }
  std::thread reloader(ReloaderLoop, catalog.get(), &wl_seeds, args.seed,
                       horizon, &reloads);
  PoisonTally poison;
  std::thread poisoner(PoisonLoop, std::cref(args), &service, horizon,
                       &poison);
  ClientTally hog;
  std::thread hogger(HogLoop, std::cref(args), &service, &cases, horizon,
                     &hog, &finals, &finals_mu);
  for (auto& t : threads) t.join();
  reloader.join();
  poisoner.join();
  hogger.join();
  if (StopRequested()) {
    // Signal-requested stop: graceful drain. By this point the blocking
    // clients have all joined (their loops observed the flag), so the drain
    // mostly finishes stragglers; anything still queued is journaled as
    // recoverable for the next run to pick up.
    const ned::WhyNotService::DrainReport drain = service.Drain(2000);
    std::cout << "drain             : completed_inflight="
              << drain.completed_inflight
              << " journaled_queued=" << drain.journaled_queued
              << " cancelled=" << drain.cancelled << "\n";
  } else {
    service.Shutdown(/*drain=*/true);
  }

  if (!args.metrics_out.empty()) {
    const std::string text =
        ned::obs::FormatPrometheus(service.metrics()->Collect());
    const ned::Status write = ned::AtomicWriteFile(args.metrics_out, text);
    if (!write.ok()) {
      std::cerr << "metrics dump failed: " << write.ToString() << "\n";
    } else {
      std::cout << "metrics           : wrote " << args.metrics_out << " ("
                << text.size() << " bytes)\n";
    }
  }

  // ---- merge + check invariants --------------------------------------------
  ClientTally total;
  std::vector<double> latencies;
  // The hog merges into the totals exactly like a client (its accepted
  // requests are in the finals map); only the per-client starvation check
  // below is limited to the blocking clients.
  std::vector<ClientTally> merged(tallies);
  merged.push_back(hog);
  for (const ClientTally& t : merged) {
    total.requests += t.requests;
    total.ok_complete += t.ok_complete;
    total.ok_partial += t.ok_partial;
    total.permanent_errors += t.permanent_errors;
    total.exhausted += t.exhausted;
    total.sheds_seen += t.sheds_seen;
    total.transients_seen += t.transients_seen;
    total.retried_to_success += t.retried_to_success;
    total.duplicate_finals += t.duplicate_finals;
    total.expired += t.expired;
    total.degraded_seen += t.degraded_seen;
    total.degraded_from_cache += t.degraded_from_cache;
    total.cache_served += t.cache_served;
    total.cache_bypassed += t.cache_bypassed;
    for (const auto& [kind, count] : t.error_kinds) {
      total.error_kinds[kind] += count;
    }
    latencies.insert(latencies.end(), t.latencies_ms.begin(),
                     t.latencies_ms.end());
  }
  const WhyNotService::Stats stats = service.stats();
  const ned::CircuitBreaker::Stats breaker = service.breaker_stats();
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);

  std::cout << "requests          : " << total.requests << "\n"
            << "  complete answers: " << total.ok_complete << "\n"
            << "  partial answers : " << total.ok_partial << "\n"
            << "  degraded answers: " << total.degraded_seen << "\n"
            << "  expired in queue: " << total.expired << "\n"
            << "  permanent errors: " << total.permanent_errors << "\n"
            << "  retried->success: " << total.retried_to_success << "\n"
            << "sheds encountered : " << total.sheds_seen << "\n"
            << "transients        : " << total.transients_seen << "\n"
            << "catalog reloads   : " << reloads.load() << "\n"
            << "poison            : finals=" << poison.finals
            << " executions=" << poison.executions
            << " fast_fails=" << poison.fast_fails
            << " expired=" << poison.expired << "\n"
            << "breaker           : opens=" << breaker.opens
            << " reopens=" << breaker.reopens
            << " probes=" << breaker.probes
            << " fast_fails=" << breaker.fast_fails
            << " tracked=" << breaker.tracked_keys << "\n"
            << "service: submitted=" << stats.submitted
            << " accepted=" << stats.accepted
            << " shed_queue=" << stats.shed_queue_full
            << " shed_mem=" << stats.shed_memory
            << " shed_quota=" << stats.shed_client_quota
            << " shed_brownout=" << stats.shed_brownout
            << " expired=" << stats.expired_in_queue
            << " degraded=" << stats.degraded
            << " degraded_not_cached=" << stats.degraded_not_cached
            << " completed=" << stats.completed
            << " transient_injected=" << stats.transient_failures
            << " watchdog_cancels=" << stats.watchdog_cancels << "\n"
            << "answer cache      : hits=" << stats.answer_cache_hits
            << " misses=" << stats.answer_cache_misses
            << " inserts=" << stats.answer_cache_inserts
            << " bypass=" << stats.answer_cache_bypass
            << " partial_not_cached=" << stats.partial_not_cached
            << " served=" << total.cache_served
            << " client_bypassed=" << total.cache_bypassed << "\n"
            << "parallel pool     : size=" << service.parallel_pool_size()
            << " peak_active=" << service.parallel_peak_active() << "\n"
            << "subtree cache     : hits=" << service.subtree_cache_stats().hits
            << " misses=" << service.subtree_cache_stats().misses
            << " entries=" << service.subtree_cache_stats().entries
            << " bytes=" << service.subtree_cache_stats().bytes << "\n"
            << "latency ms        : p50=" << p50 << " p99=" << p99 << "\n";
  if (service.persistence_enabled()) {
    const ned::JournalStats js = service.journal_stats();
    const ned::AnswerStoreStats ss = service.answer_store_stats();
    std::cout << "journal           : appends=" << js.appends
              << " syncs=" << js.syncs << " rotations=" << js.rotations
              << " bytes=" << js.bytes_written
              << " accepts=" << stats.journaled_accepts
              << " completes=" << stats.journaled_completes
              << " sheds=" << stats.journaled_sheds << "\n"
              << "answer store      : hits=" << stats.answer_store_hits
              << " misses=" << stats.answer_store_misses
              << " puts=" << stats.answer_store_puts
              << " entries_on_open=" << ss.entries_on_open
              << " corrupt_dropped=" << ss.corrupt_dropped << "\n";
  }
  if (StopRequested()) {
    // Interrupted run: the invariant battery assumes the chaos ran to its
    // horizon (e.g. "queue sheds must have happened"), which a signal at an
    // arbitrary point can't guarantee. The drain itself already asserted
    // what matters for an interrupt: in-flight finished, queued journaled.
    std::cout << "ned_stress: DRAINED (signal-interrupted; invariant battery "
                 "skipped)\n";
    return 0;
  }

  int failures = 0;
  auto fail = [&failures](const std::string& what) {
    std::cerr << "INVARIANT VIOLATED: " << what << "\n";
    ++failures;
  };
  if (total.duplicate_finals != 0) {
    fail(ned::StrCat(total.duplicate_finals,
                     " keys produced more than one final outcome"));
  }
  // No lost responses: every logical request got exactly one final outcome.
  {
    std::lock_guard<std::mutex> lock(finals_mu);
    if (finals.size() != total.requests) {
      fail(ned::StrCat("finals map has ", finals.size(), " keys for ",
                       total.requests, " requests"));
    }
  }
  // Every shed/transient request eventually succeeded through retry:
  // exhaustion means the backoff contract failed.
  if (total.exhausted != 0) {
    fail(ned::StrCat(total.exhausted, " requests exhausted their retries"));
  }
  // Admission control must actually be exercised: clients block on their own
  // requests, so whenever more clients than service capacity exist the queue
  // has to overflow at some point during the run.
  if (static_cast<size_t>(args.clients) >
          static_cast<size_t>(args.workers) + args.queue &&
      stats.shed_queue_full == 0) {
    fail(ned::StrCat("no queue sheds despite ", args.clients,
                     " clients against capacity ",
                     static_cast<size_t>(args.workers) + args.queue));
  }
  // Permanent errors should not occur: every case compiles by construction.
  if (total.permanent_errors != 0) {
    fail(ned::StrCat(total.permanent_errors, " permanent request errors"));
    for (const auto& [kind, count] : total.error_kinds) {
      std::cerr << "  " << count << "x " << kind << "\n";
    }
  }
  // Service books must balance: accepted requests all completed or failed
  // transiently (each transient is a separate accepted execution). Answer
  // cache hits are served at Submit without being accepted, so this holds
  // with the cache on -- exactly what this invariant now also audits.
  if (stats.accepted != stats.completed + stats.transient_failures) {
    fail(ned::StrCat("accepted=", stats.accepted, " != completed=",
                     stats.completed, " + transients=",
                     stats.transient_failures));
  }
  // Cache-served responses must be consistent between the service's books
  // and what the clients actually observed.
  if (total.cache_served != stats.answer_cache_hits) {
    fail(ned::StrCat("clients saw ", total.cache_served,
                     " cache-served responses but the service recorded ",
                     stats.answer_cache_hits, " answer-cache hits"));
  }
  // Full runs must actually exercise the cached path: with half the traffic
  // cache-eligible and the case list repeating, zero hits means the answer
  // cache silently stopped serving -- unless brownout legitimately kept
  // every complete answer out of it (under this harness's deliberately
  // tiny queue the ladder can sit at L1+ for the whole run).
  if (!args.smoke && service.options().answer_cache_bytes > 0 &&
      stats.answer_cache_hits == 0 && stats.degraded_not_cached == 0) {
    fail("no answer-cache hits over a full run (and brownout wasn't why)");
  }
  // Bounded tail latency: an accepted request's end-to-end time is capped
  // by its deadline (queue wait included; background deadlines go to 2s);
  // allow scheduling + checkpoint overshoot slack.
  const double latency_bound_ms = 2000 + 500;
  if (p99 > latency_bound_ms) {
    fail(ned::StrCat("p99 latency ", p99, " ms exceeds bound ",
                     latency_bound_ms, " ms"));
  }
  if (total.requests == 0) fail("no requests completed");
  // No starvation: quotas, brownout and the priority queue may delay any
  // one client, but every client of every class must land answers.
  for (size_t i = 0; i < tallies.size(); ++i) {
    if (tallies[i].ok_complete + tallies[i].ok_partial == 0) {
      fail(ned::StrCat("client ", i, " (",
                       ned::PriorityName(static_cast<Priority>(i % 3)),
                       ") starved: zero answered requests"));
    }
  }
  // The hog's two-submission bursts guarantee in-flight overlap on the
  // "hot" id, so quota sheds must actually have fired (and the blocking
  // hot clients converged through them via retry).
  if (stats.shed_client_quota == 0) {
    fail("hot client was never quota-shed");
  }
  // Honest degradation, reconciled both ways: every degraded answer the
  // service computed reached exactly one client, and none was replayed
  // from the answer cache (degraded answers must never be cached).
  if (total.degraded_seen != stats.degraded) {
    fail(ned::StrCat("clients saw ", total.degraded_seen,
                     " degraded answers but the service computed ",
                     stats.degraded));
  }
  if (total.degraded_from_cache != 0) {
    fail(ned::StrCat(total.degraded_from_cache,
                     " degraded answers served from the answer cache"));
  }
  // Queue-expiry reconciliation: every expired final the service recorded
  // was observed by exactly one client (or the poison injector).
  if (total.expired + poison.expired != stats.expired_in_queue) {
    fail(ned::StrCat("clients saw ", total.expired + poison.expired,
                     " queue expiries but the service recorded ",
                     stats.expired_in_queue));
  }
  // The breaker's whole point: poison executes at most threshold times per
  // content key, plus one execution per failed probe; the rest fast-fail.
  const uint64_t poison_execution_bound =
      kPoisonKinds * static_cast<uint64_t>(
                         service.options().breaker.failure_threshold) +
      breaker.probes;
  if (poison.executions > poison_execution_bound) {
    fail(ned::StrCat("poison executed ", poison.executions,
                     " times, above the breaker bound ",
                     poison_execution_bound));
  }
  if (poison.unexpected_ok != 0) {
    fail(ned::StrCat(poison.unexpected_ok, " poison requests returned OK"));
  }
  if (poison.exhausted != 0) {
    fail(ned::StrCat(poison.exhausted, " poison requests exhausted retries"));
  }
  // Enough sequential poison to exceed the threshold must have opened the
  // breaker and fast-failed the excess.
  if (poison.finals >
          kPoisonKinds * (static_cast<uint64_t>(
                              service.options().breaker.failure_threshold) +
                          1) &&
      (breaker.opens == 0 || poison.fast_fails == 0)) {
    fail(ned::StrCat("breaker never engaged under ", poison.finals,
                     " poison finals (opens=", breaker.opens,
                     ", fast_fails=", poison.fast_fails, ")"));
  }
  // Bounded intra-query parallelism: however many requests fanned out
  // concurrently, the shared pool's high-watermark of simultaneously
  // running intra-query workers never exceeded its configured size.
  if (service.parallel_peak_active() >
      static_cast<uint64_t>(service.parallel_pool_size())) {
    fail(ned::StrCat("intra-query workers peaked at ",
                     service.parallel_peak_active(),
                     " above the pool bound ",
                     service.parallel_pool_size()));
  }
  if (args.threads_per_request > 1 && service.parallel_pool_size() == 0) {
    fail("threads_per_request > 1 but the service built no parallel pool");
  }
  // Clients never trip breakers (their cases compile; transients and
  // resource limits are not breaker failures), so the service's fast-fail
  // count must reconcile exactly with what the poison injector saw.
  if (stats.breaker_fast_fails != poison.fast_fails) {
    fail(ned::StrCat("service recorded ", stats.breaker_fast_fails,
                     " breaker fast-fails but the poison injector saw ",
                     poison.fast_fails));
  }

  if (failures == 0) {
    std::cout << "ned_stress: PASS (zero crashes, exactly-once responses, "
                 "all retries converged, p99 bounded, no starvation, "
                 "degradation honest, poison breaker-bounded, intra-query "
                 "parallelism within the pool bound)\n";
    return 0;
  }
  std::cerr << "ned_stress: FAIL (" << failures << " violations)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  return Run(args);
}
